"""Streams, events, and the operations that flow through them.

A :class:`Stream` is an ordered queue of device operations; operations
in different streams may overlap, subject to engine resources — exactly
CUDA's model.  An :class:`Event` marks a point in a stream; other
streams can wait on it, and the host can read its completion timestamp
(the simulated ``cudaEventElapsedTime``).

Streams here follow ``--default-stream per-thread`` semantics: the
default stream is an ordinary stream with no implicit global
synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import StreamError

__all__ = ["Op", "Stream", "Event"]


@dataclass
class Op:
    """One device operation awaiting scheduling.

    Exactly one of ``duration`` (fixed-time ops: copies, migrations,
    event bookkeeping) or ``timing_fn`` (kernels: called with the SM
    grant at start time) must be provided.
    """

    kind: str                    #: "kernel" | "h2d" | "d2h" | "d2d" | "delay" | ...
    name: str
    stream: "Stream"
    duration: float | None = None
    timing_fn: Callable[[int], float] | None = None
    sm_demand: int = 0           #: SMs the op can use (kernels only)
    nbytes: int = 0
    event: "Event | None" = None     #: for record/wait ops
    on_complete: Callable[["Op"], None] | None = None

    # scheduling state
    start_time: float | None = None
    end_time: float | None = None     #: scheduled completion (set at start)
    done: bool = False                #: completion has been processed
    granted_sms: int = 0

    @property
    def span(self) -> tuple[float, float] | None:
        """(start, end) device timestamps once scheduled, else None."""
        if self.start_time is None or self.end_time is None:
            return None
        return (self.start_time, self.end_time)

    def __post_init__(self) -> None:
        if (self.duration is None) == (self.timing_fn is None):
            if self.kind not in ("event_record", "event_wait"):
                raise StreamError(
                    f"op {self.name!r} needs exactly one of duration/timing_fn"
                )


class Stream:
    """An in-order queue of device operations."""

    _next_id = 0

    def __init__(self, device: Any, name: str | None = None) -> None:
        self.device = device
        self.id = Stream._next_id
        Stream._next_id += 1
        self.name = name or (f"stream {self.id}" if self.id else "default stream")
        self.queue: list[Op] = []

    def head(self) -> Op | None:
        """The next unfinished, unstarted op, if its predecessors are done."""
        for op in self.queue:
            if op.done:
                continue
            if op.start_time is not None:
                return None  # head is running
            return op
        return None

    def pending(self) -> int:
        return sum(1 for op in self.queue if not op.done)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Stream({self.name}, pending={self.pending()})"


@dataclass
class Event:
    """A CUDA event: a timestamped marker in a stream."""

    name: str = "event"
    recorded: bool = False       #: an event_record op referencing it exists
    done_time: float | None = None
    _waiters: list[Op] = field(default_factory=list, repr=False)

    def elapsed_since(self, earlier: "Event") -> float:
        """``cudaEventElapsedTime`` in seconds."""
        if self.done_time is None or earlier.done_time is None:
            raise StreamError("elapsed_since on incomplete events")
        return self.done_time - earlier.done_time
