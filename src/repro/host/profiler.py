"""nvprof-style reporting over the kernel log.

The paper leans on ``nvprof`` metrics — warp execution efficiency for
WarpDivRedux (§III-A), load efficiency for CoMem, shared-memory
efficiency for BankRedux — and on ``nvvp`` timelines for Conkernels.
:func:`build_report` renders the same per-kernel metrics from the
simulator's :class:`~repro.simt.stats.KernelStats`.
"""

from __future__ import annotations

from collections import defaultdict

from repro.arch.spec import GPUSpec
from repro.common.tables import render_table
from repro.common.units import fmt_time
from repro.host.stream import Op
from repro.simt.stats import KernelStats
from repro.timing.occupancy import compute_occupancy

__all__ = ["build_report", "kernel_metrics"]


def kernel_metrics(stats: KernelStats, gpu: GPUSpec) -> dict[str, float]:
    """The nvprof-like metric set for one launch."""
    occ = compute_occupancy(
        gpu,
        stats.block.size,
        shared_mem_per_block=stats.shared_mem_per_block,
        registers_per_thread=stats.registers_per_thread,
        n_blocks=stats.blocks,
    )
    return {
        "warp_execution_efficiency": stats.warp_execution_efficiency,
        "branch_efficiency": stats.branch_efficiency,
        "gld_efficiency": stats.gld_efficiency,
        "shared_efficiency": stats.shared_efficiency,
        "achieved_occupancy": occ.occupancy,
        "transactions_per_request": (
            stats.transactions / stats.global_requests if stats.global_requests else 0.0
        ),
    }


def build_report(kernel_log: list[tuple[KernelStats, Op]], gpu: GPUSpec) -> str:
    """Aggregate the launch log into a per-kernel summary table."""
    groups: dict[str, list[tuple[KernelStats, Op]]] = defaultdict(list)
    for stats, op in kernel_log:
        groups[stats.name].append((stats, op))

    rows = []
    for name, entries in sorted(groups.items()):
        times = [op.duration for _, op in entries if op.duration is not None]
        total = sum(times)
        calls = len(entries)
        m = kernel_metrics(entries[0][0], gpu)
        rows.append(
            [
                name,
                calls,
                fmt_time(total),
                fmt_time(total / calls) if calls and times else "-",
                f"{m['warp_execution_efficiency']:.1%}",
                f"{m['gld_efficiency']:.1%}",
                f"{m['shared_efficiency']:.1%}",
                f"{m['achieved_occupancy']:.1%}",
            ]
        )
    return render_table(
        ["kernel", "calls", "total", "avg", "warp eff", "gld eff", "smem eff", "occupancy"],
        rows,
        title=f"profile on {gpu.name}",
    )
