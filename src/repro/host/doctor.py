"""Performance doctor: detect the paper's inefficiency patterns.

CUDAMicroBench's purpose is to *teach* the fourteen inefficiency
patterns; this module closes the loop by detecting them automatically —
the "evaluating tools' capability of detecting memory problems"
direction of the paper's future work.  Each finding names the matching
microbenchmark, so a flagged kernel points straight at the example
showing the fix.

The rules run over the *exported* per-kernel metrics block
(:func:`repro.prof.metrics.kernel_entry`), so anything that can load a
metrics JSON — the CLI, CI, or an external tool — can re-run the doctor
without access to raw :class:`~repro.simt.stats.KernelStats`.
:func:`diagnose` remains the stats-level convenience wrapper::

    stats = rt.launch(my_kernel, grid, block, *args)
    for finding in diagnose(stats, rt.gpu):
        print(finding)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.arch.spec import GPUSpec
from repro.simt.stats import KernelStats

__all__ = ["Finding", "diagnose", "diagnose_metrics", "SEVERITIES"]

SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class Finding:
    """One detected inefficiency."""

    rule: str          #: short identifier, e.g. "uncoalesced-access"
    severity: str      #: one of SEVERITIES
    benchmark: str     #: the CUDAMicroBench entry demonstrating the fix
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.rule}: {self.message} (see {self.benchmark})"


def _f(rule, severity, benchmark, message) -> Finding:
    return Finding(rule=rule, severity=severity, benchmark=benchmark, message=message)


def diagnose_metrics(entry: dict[str, Any], gpu: dict[str, Any]) -> list[Finding]:
    """Run every rule over one exported per-kernel metrics block.

    ``entry`` is a :func:`repro.prof.metrics.kernel_entry` dict (the
    per-kernel block of a metrics document); ``gpu`` the document's
    :func:`repro.prof.metrics.gpu_info` dict.  Returns findings ordered
    most-severe first; an empty list means no pattern fired.
    """
    m = entry.get("metrics", {})
    c = entry.get("counters", {})
    findings: list[Finding] = []

    # --- coalescing (CoMem) -------------------------------------------
    gld_eff = m.get("gld_efficiency", 1.0)
    if c.get("global_requests"):
        tpr = m.get("transactions_per_request", 0.0)
        if tpr >= 8:
            findings.append(_f(
                "uncoalesced-access", "critical", "CoMem",
                f"{tpr:.1f} transactions per global request "
                f"(coalesced = 1); lanes of a warp stride through memory",
            ))
        elif tpr >= 3:
            findings.append(_f(
                "uncoalesced-access", "warning", "CoMem",
                f"{tpr:.1f} transactions per global request",
            ))
        elif 1.5 <= tpr < 3 and gld_eff >= 0.5:
            findings.append(_f(
                "misaligned-access", "info", "MemAlign",
                f"{tpr:.1f} transactions per request with good sector "
                "utilization: warp accesses straddle segment boundaries",
            ))

    # --- sector waste --------------------------------------------------
    if c.get("sectors_requested") and gld_eff < 0.5:
        findings.append(_f(
            "low-load-efficiency",
            "critical" if gld_eff < 0.25 else "warning",
            "CoMem / MiniTransfer",
            f"only {gld_eff:.0%} of each transferred sector is "
            "used; check access pattern and data layout",
        ))

    # --- divergence (WarpDivRedux) --------------------------------------
    warp_eff = m.get("warp_execution_efficiency", 1.0)
    if warp_eff < 0.9:
        sev = "warning" if warp_eff > 0.6 else "critical"
        findings.append(_f(
            "warp-divergence", sev, "WarpDivRedux",
            f"warp execution efficiency {warp_eff:.0%}; "
            f"{c.get('divergent_branches', 0):.0f} of "
            f"{c.get('branches', 0):.0f} branches diverged within a warp",
        ))

    # --- bank conflicts (BankRedux) ---------------------------------------
    shared_eff = m.get("shared_efficiency", 1.0)
    if c.get("shared_requests") and shared_eff < 0.9:
        sev = "warning" if shared_eff > 0.5 else "critical"
        findings.append(_f(
            "shared-bank-conflicts", sev, "BankRedux",
            f"shared accesses replay {1 / shared_eff:.1f}x on "
            "average from bank conflicts",
        ))

    # --- constant serialization (ReadOnlyMem anti-pattern) ------------------
    if c.get("constant_requests") and c.get("constant_replays", 0) > c["constant_requests"]:
        findings.append(_f(
            "constant-scatter", "warning", "ReadOnlyMem",
            "constant-memory reads are not warp-uniform and serialize; "
            "scattered read-only data belongs in texture/global memory",
        ))

    # --- occupancy ---------------------------------------------------------
    occupancy = m.get("achieved_occupancy", 1.0)
    if occupancy < 0.5:
        findings.append(_f(
            "low-occupancy", "warning", "Conkernels",
            f"occupancy {occupancy:.0%}, limited by "
            f"{entry.get('occupancy_limiter', 'unknown')}; "
            "little latency hiding available",
        ))
    sm_count = gpu.get("sm_count", 0)
    if c.get("blocks", sm_count) < sm_count:
        findings.append(_f(
            "undersized-grid", "info", "Conkernels",
            f"grid of {c['blocks']:.0f} blocks cannot fill {sm_count} SMs; "
            "consider concurrent kernels or a larger grid",
        ))

    # --- barriers (Shuffle) ----------------------------------------------
    if c.get("barriers", 0) > 6 and c.get("shared_requests"):
        findings.append(_f(
            "barrier-heavy-exchange", "info", "Shuffle",
            f"{c['barriers']:.0f} block barriers around shared-memory "
            "traffic; warp-level shuffles can replace the intra-warp steps",
        ))

    # --- Kepler read-only placement (ReadOnlyMem) ----------------------------
    if not gpu.get("global_loads_cached_in_l1", True):
        global_read = c.get("global_read_bytes", 0.0)
        if global_read and global_read > c.get("bytes_requested", 0.0) * 0.5:
            findings.append(_f(
                "uncached-read-path", "warning", "ReadOnlyMem",
                f"{gpu.get('name', 'this device')} does not cache global "
                "loads in L1; route read-only data through texture/__ldg",
            ))

    order = {s: i for i, s in enumerate(SEVERITIES[::-1])}
    findings.sort(key=lambda f: order[f.severity])
    return findings


def diagnose(stats: KernelStats, gpu: GPUSpec) -> list[Finding]:
    """Inspect one launch's statistics for known inefficiency patterns.

    Builds the exported metrics block for the launch and delegates to
    :func:`diagnose_metrics`, so the stats path and the metrics-JSON
    path share one rule set.
    """
    from repro.prof.metrics import gpu_info, kernel_entry

    entry = kernel_entry([(stats, None)], gpu, include_timing=False)
    return diagnose_metrics(entry, gpu_info(gpu))
