"""Performance doctor: detect the paper's inefficiency patterns.

CUDAMicroBench's purpose is to *teach* the fourteen inefficiency
patterns; this module closes the loop by detecting them automatically
from a launch's :class:`~repro.simt.stats.KernelStats` — the
"evaluating tools' capability of detecting memory problems" direction
of the paper's future work.  Each finding names the matching
microbenchmark, so a flagged kernel points straight at the example
showing the fix.

Usage::

    stats = rt.launch(my_kernel, grid, block, *args)
    for finding in diagnose(stats, rt.gpu):
        print(finding)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.spec import GPUSpec
from repro.simt.stats import KernelStats
from repro.timing.occupancy import compute_occupancy

__all__ = ["Finding", "diagnose", "SEVERITIES"]

SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class Finding:
    """One detected inefficiency."""

    rule: str          #: short identifier, e.g. "uncoalesced-access"
    severity: str      #: one of SEVERITIES
    benchmark: str     #: the CUDAMicroBench entry demonstrating the fix
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.rule}: {self.message} (see {self.benchmark})"


def _f(rule, severity, benchmark, message) -> Finding:
    return Finding(rule=rule, severity=severity, benchmark=benchmark, message=message)


def diagnose(stats: KernelStats, gpu: GPUSpec) -> list[Finding]:
    """Inspect one launch's statistics for known inefficiency patterns.

    Returns findings ordered most-severe first; an empty list means no
    pattern fired.
    """
    findings: list[Finding] = []

    # --- coalescing (CoMem) -------------------------------------------
    if stats.global_requests:
        tpr = stats.transactions / stats.global_requests
        if tpr >= 8:
            findings.append(_f(
                "uncoalesced-access", "critical", "CoMem",
                f"{tpr:.1f} transactions per global request "
                f"(coalesced = 1); lanes of a warp stride through memory",
            ))
        elif tpr >= 3:
            findings.append(_f(
                "uncoalesced-access", "warning", "CoMem",
                f"{tpr:.1f} transactions per global request",
            ))
        elif 1.5 <= tpr < 3 and stats.gld_efficiency >= 0.5:
            findings.append(_f(
                "misaligned-access", "info", "MemAlign",
                f"{tpr:.1f} transactions per request with good sector "
                "utilization: warp accesses straddle segment boundaries",
            ))

    # --- sector waste --------------------------------------------------
    if stats.sectors_requested and stats.gld_efficiency < 0.5:
        findings.append(_f(
            "low-load-efficiency",
            "critical" if stats.gld_efficiency < 0.25 else "warning",
            "CoMem / MiniTransfer",
            f"only {stats.gld_efficiency:.0%} of each transferred sector is "
            "used; check access pattern and data layout",
        ))

    # --- divergence (WarpDivRedux) --------------------------------------
    if stats.warp_execution_efficiency < 0.9:
        sev = "warning" if stats.warp_execution_efficiency > 0.6 else "critical"
        findings.append(_f(
            "warp-divergence", sev, "WarpDivRedux",
            f"warp execution efficiency {stats.warp_execution_efficiency:.0%}; "
            f"{stats.divergent_branches:.0f} of {stats.branches:.0f} branches "
            "diverged within a warp",
        ))

    # --- bank conflicts (BankRedux) ---------------------------------------
    if stats.shared_requests and stats.shared_efficiency < 0.9:
        sev = "warning" if stats.shared_efficiency > 0.5 else "critical"
        findings.append(_f(
            "shared-bank-conflicts", sev, "BankRedux",
            f"shared accesses replay {1 / stats.shared_efficiency:.1f}x on "
            "average from bank conflicts",
        ))

    # --- constant serialization (ReadOnlyMem anti-pattern) ------------------
    if stats.constant_requests and stats.constant_replays > stats.constant_requests:
        findings.append(_f(
            "constant-scatter", "warning", "ReadOnlyMem",
            "constant-memory reads are not warp-uniform and serialize; "
            "scattered read-only data belongs in texture/global memory",
        ))

    # --- occupancy ---------------------------------------------------------
    occ = compute_occupancy(
        gpu,
        stats.block.size,
        shared_mem_per_block=stats.shared_mem_per_block,
        registers_per_thread=stats.registers_per_thread,
        n_blocks=stats.blocks,
    )
    if occ.occupancy < 0.5:
        findings.append(_f(
            "low-occupancy", "warning", "Conkernels",
            f"occupancy {occ.occupancy:.0%}, limited by {occ.limiter}; "
            "little latency hiding available",
        ))
    if stats.blocks < gpu.sm_count:
        findings.append(_f(
            "undersized-grid", "info", "Conkernels",
            f"grid of {stats.blocks} blocks cannot fill {gpu.sm_count} SMs; "
            "consider concurrent kernels or a larger grid",
        ))

    # --- barriers (Shuffle) ----------------------------------------------
    if stats.barriers > 6 and stats.shared_requests:
        findings.append(_f(
            "barrier-heavy-exchange", "info", "Shuffle",
            f"{stats.barriers} block barriers around shared-memory traffic; "
            "warp-level shuffles can replace the intra-warp steps",
        ))

    # --- Kepler read-only placement (ReadOnlyMem) ----------------------------
    if not gpu.global_loads_cached_in_l1:
        global_bytes = stats.trace and sum(
            r.summary.bytes_requested
            for r in stats.trace.records
            if r.space == "global" and not r.is_store
        )
        if global_bytes and global_bytes > stats.bytes_requested * 0.5:
            findings.append(_f(
                "uncached-read-path", "warning", "ReadOnlyMem",
                f"{gpu.name} does not cache global loads in L1; route "
                "read-only data through texture/__ldg",
            ))

    order = {s: i for i, s in enumerate(SEVERITIES[::-1])}
    findings.sort(key=lambda f: order[f.severity])
    return findings
