"""Host runtime: streams, engine scheduling, unified memory, graphs."""

from repro.host.bandwidth import BandwidthReport, measure_bandwidth
from repro.host.doctor import Finding, diagnose
from repro.host.engine import DeviceEngine
from repro.host.graph import ExecGraph, GraphNode, TaskGraph
from repro.host.profiler import build_report, kernel_metrics
from repro.host.runtime import CudaLite
from repro.host.stream import Event, Op, Stream
from repro.host.timeline import Timeline, TimelineEvent
from repro.host.unified import (
    UM_BANDWIDTH_EFFICIENCY,
    UM_FAULT_CONCURRENCY,
    ManagedState,
    MigrationPlan,
    contiguous_groups,
    migration_time,
)

__all__ = [
    "BandwidthReport",
    "measure_bandwidth",
    "Finding",
    "diagnose",
    "DeviceEngine",
    "ExecGraph",
    "GraphNode",
    "TaskGraph",
    "build_report",
    "kernel_metrics",
    "CudaLite",
    "Event",
    "Op",
    "Stream",
    "Timeline",
    "TimelineEvent",
    "UM_BANDWIDTH_EFFICIENCY",
    "UM_FAULT_CONCURRENCY",
    "ManagedState",
    "MigrationPlan",
    "contiguous_groups",
    "migration_time",
]
