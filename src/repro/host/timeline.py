"""Device activity timeline — the simulator's nvvp.

Every operation the discrete-event engine completes (kernels, copies,
page migrations, graph launches) is logged as a :class:`TimelineEvent`.
:meth:`Timeline.render_ascii` draws the events as horizontal bars, one
lane per stream/engine, which is how the paper visualizes concurrent
kernel execution (Fig. 6): with streams the kernel bars overlap, with
serial launching they form a staircase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.units import fmt_time

__all__ = ["TimelineEvent", "Timeline"]


@dataclass(frozen=True)
class TimelineEvent:
    """One completed device operation."""

    name: str
    kind: str       #: "kernel" | "h2d" | "d2h" | "d2d" | "migrate" | "graph" | ...
    lane: str       #: display lane, e.g. "stream 2" or "copy H2D"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """An append-only log of device activity."""

    events: list[TimelineEvent] = field(default_factory=list)

    def add(self, name: str, kind: str, lane: str, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"event {name!r} ends before it starts")
        self.events.append(TimelineEvent(name, kind, lane, start, end))

    def clear(self) -> None:
        self.events.clear()

    @property
    def span(self) -> tuple[float, float]:
        """(first start, last end) over all events; (0, 0) when empty."""
        if not self.events:
            return (0.0, 0.0)
        return (
            min(e.start for e in self.events),
            max(e.end for e in self.events),
        )

    def lanes(self) -> list[str]:
        """Distinct lanes in first-appearance order."""
        seen: dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.lane, None)
        return list(seen)

    def ordered_lanes(self) -> list[str]:
        """Distinct lanes in deterministic display order.

        Sorted by each lane's earliest event start, ties broken by lane
        name — so renders are stable regardless of the order completions
        were processed in.
        """
        first: dict[str, float] = {}
        for e in self.events:
            if e.lane not in first or e.start < first[e.lane]:
                first[e.lane] = e.start
        return sorted(first, key=lambda lane: (first[lane], lane))

    def busy_time(self, lane: str | None = None) -> float:
        """Total busy time, merging overlapping events within a lane."""
        evs = [e for e in self.events if lane is None or e.lane == lane]
        if lane is None:
            # across lanes, merge the union of intervals
            pass
        intervals = sorted((e.start, e.end) for e in evs)
        total = 0.0
        cur_s: float | None = None
        cur_e = 0.0
        for s, e in intervals:
            if cur_s is None or s > cur_e:
                if cur_s is not None:
                    total += cur_e - cur_s
                cur_s, cur_e = s, e
            else:
                cur_e = max(cur_e, e)
        if cur_s is not None:
            total += cur_e - cur_s
        return total

    def render_ascii(self, width: int = 72) -> str:
        """Draw the timeline as per-lane bars of ``#`` characters.

        Sub-character events render as ``|`` so short operations stay
        visible; the footer shows the total span.
        """
        if not self.events:
            return "(empty timeline)"
        t0, t1 = self.span
        # A degenerate span (only zero-duration events) still renders:
        # every event collapses to a single `|` marker at the origin.
        scale = width / (t1 - t0) if t1 > t0 else 0.0
        lanes = self.ordered_lanes()
        label_w = max(len(s) for s in lanes) + 1
        lines = []
        for lane in lanes:
            row = [" "] * width
            for e in self.events:
                if e.lane != lane:
                    continue
                a = int((e.start - t0) * scale)
                b = int((e.end - t0) * scale)
                a = min(a, width - 1)
                b = min(max(b, a + 1), width)
                ch = "#" if b - a > 1 else "|"
                for i in range(a, b):
                    row[i] = ch
            lines.append(f"{lane.ljust(label_w)}|{''.join(row)}|")
        lines.append(
            f"{''.ljust(label_w)} 0 {'-' * max(width - len(fmt_time(t1 - t0)) - 6, 1)} "
            f"{fmt_time(t1 - t0)}"
        )
        return "\n".join(lines)

    def summary(self) -> str:
        """Per-lane busy-time summary table."""
        t0, t1 = self.span
        total = t1 - t0
        out = [f"timeline span: {fmt_time(total)} ({len(self.events)} events)"]
        for lane in self.ordered_lanes():
            busy = self.busy_time(lane)
            util = busy / total if total else 0.0
            out.append(f"  {lane}: busy {fmt_time(busy)} ({util:.0%})")
        return "\n".join(out)
