"""CudaLite: the CUDA-runtime-shaped front door of the simulator.

One :class:`CudaLite` instance owns a simulated machine (GPU + link):
device memory, streams and events, kernel launching, explicit and
unified-memory transfers, task graphs, and the timeline/profiler.  The
method names track the CUDA runtime API they stand in for::

    rt = CudaLite(CARINA)                      # V100 system
    x = rt.to_device(host_x)                   # cudaMalloc + cudaMemcpy
    y = rt.malloc(n)                           # cudaMalloc
    rt.launch(axpy, grid, block, x, y, n, a)   # <<<grid, block>>>
    elapsed = rt.synchronize()                 # cudaDeviceSynchronize

Functional effects (actual data movement between NumPy buffers) happen
at call time in program order; *durations* are resolved by the
discrete-event engine at :meth:`synchronize`, which is when overlap
across streams is decided.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Sequence

import numpy as np

from repro.arch.presets import PCIE3_X16
from repro.arch.spec import GPUSpec, SystemSpec
from repro.common.errors import (
    AllocationError,
    GraphError,
    InvalidAddressError,
    KernelRuntimeError,
    LaunchConfigError,
    MemoryError_,
    StreamError,
    cuda_error_name,
)
from repro.exec.dispatch import current_backend_name, make_dispatcher
from repro.faults.plan import FaultLog, FaultPlan, RetryPolicy
from repro.host.engine import DeviceEngine
from repro.host.graph import ExecGraph, GraphNode, TaskGraph
from repro.host.stream import Event, Op, Stream
from repro.host.timeline import Timeline
from repro.host.unified import ManagedState
from repro.mem.allocator import DeviceAllocator
from repro.mem.buffer import DeviceArray
from repro.sanitize.core import Sanitizer
from repro.sanitize.session import current_session
from repro.simt.dim3 import Dim3
from repro.simt.executor import run_kernel
from repro.simt.kernel import KernelDef
from repro.simt.stats import KernelStats
from repro.simt.texture import TextureView
from repro.timing.model import estimate_kernel_time
from repro.timing.occupancy import compute_occupancy

__all__ = ["CudaLite"]

_CONSTANT_BANK_BYTES = 64 * 1024


#: Error classes that poison the context (CUDA sticky errors): once one
#: escapes a launch, every later API call fails until :meth:`reset`.
_STICKY_ERRORS = (KernelRuntimeError, InvalidAddressError)


class CudaLite:
    """A simulated GPU machine with a CUDA-runtime-style API.

    Parameters
    ----------
    system:
        Machine to simulate (GPU + link); defaults to CARINA (V100).
    sanitize:
        Attach a compute-sanitizer analog to every launch: ``"all"``,
        a tool name, an iterable of tool names, or a prepared
        :class:`~repro.sanitize.core.Sanitizer`.
    faults:
        A :class:`~repro.faults.plan.FaultPlan` injecting deterministic
        failures into allocations, transfers and launches.
    watchdog_cycles:
        Issue-cycle budget per kernel (display-watchdog analog).
    retry:
        Backoff policy for transient transfer faults.
    backend:
        Memory-analysis execution backend: ``"reference"`` (the
        per-lane oracle), ``"fast"`` (residue-class fast path), or
        ``"jit"`` (trace-JIT replay; see :mod:`repro.jit`) — all with
        identical results (see :mod:`repro.exec`).  Defaults through
        :func:`repro.exec.use_backend` / ``REPRO_BACKEND`` to
        ``"reference"``.

    Inside a :func:`~repro.sanitize.session.sanitize_session` block, the
    session's sanitizer/faults/watchdog are the defaults for any of
    these left unset, and the runtime registers itself with the session
    so leakcheck can sweep it at session exit.
    """

    def __init__(
        self,
        system: SystemSpec | GPUSpec | None = None,
        *,
        sanitize: str | Sanitizer | Sequence[str] | None = None,
        faults: FaultPlan | None = None,
        watchdog_cycles: float | None = None,
        retry: RetryPolicy | None = None,
        hub=None,
        backend: str | None = None,
    ) -> None:
        if system is None:
            from repro.arch.presets import CARINA

            system = CARINA
        if isinstance(system, GPUSpec):
            system = SystemSpec(name=f"{system.name} system", gpu=system, link=PCIE3_X16)
        self.system = system
        self.gpu = system.gpu
        self.link = system.link

        session = current_session()
        if session is not None:
            if sanitize is None:
                sanitize = session.sanitizer
            if faults is None:
                faults = session.faults
            if watchdog_cycles is None:
                watchdog_cycles = session.watchdog_cycles
            if hub is None:
                hub = session.hub
            session.runtimes.append(self)
        self.sanitizer = self._as_sanitizer(sanitize)
        self.faults = faults
        self.fault_log = FaultLog()
        self.retry = retry or RetryPolicy()
        if watchdog_cycles is None and faults is not None:
            watchdog_cycles = faults.watchdog_cycles
        self.watchdog_cycles = watchdog_cycles
        self._sticky: Exception | None = None
        self._launch_ordinal = 0
        self._op_ordinal = 0

        #: resolved backend name and its per-runtime dispatcher; the
        #: dispatcher's counters feed the metrics ``execution`` section
        self.backend = current_backend_name(backend)
        self.dispatch = make_dispatcher(self.backend)

        self.timeline = Timeline()
        self.engine = DeviceEngine(system, self.timeline)
        self.engine.backend = self.backend
        track_init = self.sanitizer is not None and self.sanitizer.enabled("memcheck")
        self.allocator = DeviceAllocator(self.gpu.dram_size, track_init=track_init)
        self.default_stream = Stream(self, name="default stream")
        self.engine.register_stream(self.default_stream)
        self._managed: dict[int, ManagedState] = {}
        self._constant_bytes = 0
        self._capture: TaskGraph | None = None
        self.kernel_log: list[tuple[KernelStats, Op]] = []
        self.hub = None
        if hub is not None:
            self.attach_hub(hub)

    def attach_hub(self, hub) -> None:
        """Wire an :class:`~repro.prof.activity.ActivityHub` into every
        layer of this runtime: the engine (timed device records), the
        fault log and sanitizer (driver-phase records), and the launch
        path (``launch`` + ``counter`` records)."""
        self.hub = hub
        self.engine.hub = hub
        self.fault_log.hub = hub
        if self.sanitizer is not None:
            self.sanitizer.hub = hub
        if hasattr(self.dispatch, "hub"):
            # the jit dispatcher reports trace bailouts as activity
            self.dispatch.hub = hub

    @staticmethod
    def _as_sanitizer(sanitize) -> Sanitizer | None:
        if sanitize is None or isinstance(sanitize, Sanitizer):
            return sanitize
        return Sanitizer(sanitize)

    # ==================================================================
    # Sticky-error lifecycle
    # ==================================================================
    def _require_live(self) -> None:
        """Every API entry point fails once the context is poisoned."""
        exc = self._sticky
        if exc is not None:
            raise type(exc)(
                f"context is in a sticky error state ({cuda_error_name(exc)}: "
                f"{exc.args[0] if exc.args else exc}); call reset() to recover"
            )

    def _poison(self, exc: Exception) -> None:
        """Record a context-poisoning error (first one wins)."""
        if self._sticky is None and isinstance(exc, _STICKY_ERRORS):
            self._sticky = exc

    @property
    def sticky_error(self) -> Exception | None:
        """The error that poisoned the context, if any (``cudaGetLastError``)."""
        return self._sticky

    # ==================================================================
    # Memory management
    # ==================================================================
    def malloc(
        self,
        shape: int | tuple[int, ...],
        dtype: Any = np.float32,
        *,
        align: int = 256,
        offset: int = 0,
    ) -> DeviceArray:
        """``cudaMalloc``; ``offset`` deliberately mis-aligns (MemAlign)."""
        self._require_live()
        dt = np.dtype(dtype)
        size = int(np.prod(shape)) if not isinstance(shape, int) else shape
        nbytes = max(size, 1) * dt.itemsize
        self._maybe_fail_alloc(nbytes)
        alloc = self.allocator.malloc(nbytes, align=align, offset=offset)
        return DeviceArray(alloc, dt, shape)

    def _maybe_fail_alloc(self, nbytes: int) -> None:
        plan = self.faults
        if plan is not None and plan.alloc_should_fail(nbytes):
            self.fault_log.record("alloc-fail", f"{nbytes} bytes")
            # like a real cudaErrorMemoryAllocation, OOM is not sticky
            raise AllocationError(
                f"injected fault: allocation of {nbytes} bytes failed "
                f"(budget of {plan.alloc_fail_after_bytes} bytes exhausted)"
            )

    def malloc_managed(
        self, shape: int | tuple[int, ...], dtype: Any = np.float32
    ) -> DeviceArray:
        """``cudaMallocManaged``: unified memory, starts host-resident."""
        self._require_live()
        dt = np.dtype(dtype)
        size = int(np.prod(shape)) if not isinstance(shape, int) else shape
        self._maybe_fail_alloc(max(size, 1) * dt.itemsize)
        alloc = self.allocator.malloc(max(size, 1) * dt.itemsize, managed=True)
        self._managed[alloc.addr] = ManagedState(alloc, self.gpu.um_page_bytes)
        return DeviceArray(alloc, dt, shape)

    def free(self, arr: DeviceArray) -> None:
        """``cudaFree``."""
        self._managed.pop(arr.alloc.addr, None)
        self.allocator.free(arr.alloc)

    def to_device(
        self,
        host: np.ndarray,
        *,
        timed: bool = False,
        stream: Stream | None = None,
        pinned: bool = False,
        align: int = 256,
        offset: int = 0,
    ) -> DeviceArray:
        """Allocate + copy a host array in.  ``timed=False`` (default)
        treats it as setup outside the measured region."""
        host = np.ascontiguousarray(host)
        arr = self.malloc(host.shape, host.dtype, align=align, offset=offset)
        if timed:
            self.memcpy_h2d(arr, host, stream=stream, pinned=pinned)
        else:
            arr.fill_from(host)
        return arr

    def const_array(self, host: np.ndarray) -> DeviceArray:
        """Place read-only data in ``__constant__`` memory (≤ 64 KiB)."""
        host = np.ascontiguousarray(host)
        if self._constant_bytes + host.nbytes > _CONSTANT_BANK_BYTES:
            raise MemoryError_(
                f"constant memory exhausted: {host.nbytes} B requested, "
                f"{_CONSTANT_BANK_BYTES - self._constant_bytes} B free"
            )
        self._constant_bytes += host.nbytes
        arr = self.malloc(host.shape, host.dtype)
        arr.fill_from(host)
        return arr

    def texture_1d(self, host: np.ndarray) -> TextureView:
        """Bind a 1-D texture over a linear copy of ``host``."""
        host = np.ascontiguousarray(host)
        if host.ndim != 1:
            raise MemoryError_("texture_1d needs a 1-D host array")
        arr = self.to_device(host)
        return TextureView(arr, width=host.shape[0])

    def texture_2d(self, host: np.ndarray, *, tile: int | None = None) -> TextureView:
        """Bind a 2-D texture: data is stored block-linear (CUDA array)."""
        host = np.ascontiguousarray(host)
        if host.ndim != 2:
            raise MemoryError_("texture_2d needs a 2-D host array")
        from repro.simt.texture import DEFAULT_TILE

        t = tile or DEFAULT_TILE
        swizzled = TextureView.swizzle_2d(host, tile=t)
        arr = self.to_device(swizzled)
        h, w = host.shape
        return TextureView(arr, width=w, height=h, tile=t)

    # ==================================================================
    # Explicit copies
    # ==================================================================
    def _submit(self, op: Op) -> None:
        if self._capture is not None:
            raise StreamError(
                "internal: _submit during capture (use _submit_or_capture)"
            )
        self.engine.submit(op)

    def _copy_op(
        self, kind: str, name: str, nbytes: int, stream: Stream, pinned: bool
    ) -> Op:
        return Op(
            kind=kind,
            name=name,
            stream=stream,
            duration=self.link.transfer_time(nbytes, pinned=pinned),
            nbytes=nbytes,
        )

    def _transfer_faults(self, direction: str, nbytes: int, stream: Stream) -> str:
        """Resolve one transfer's injected outcome, retrying transient
        failures with backoff.

        Returns the final outcome (``"ok"`` or ``"corrupt"``) or raises
        :class:`MemoryError_` once the retry budget is exhausted.  Each
        retry occupies the stream with a simulated backoff delay.
        """
        plan = self.faults
        if plan is None or self._capture is not None:
            return "ok"
        attempts = 0
        while True:
            outcome = plan.transfer_outcome(direction)
            if outcome != "fail":
                if attempts:
                    self.fault_log.record(
                        f"{direction}-recovered", f"after {attempts} retr"
                        f"{'y' if attempts == 1 else 'ies'}"
                    )
                return outcome
            attempts += 1
            self.fault_log.record(
                f"{direction}-fail",
                f"attempt {attempts} of {self.retry.max_attempts} "
                f"({nbytes} bytes)",
            )
            if attempts >= self.retry.max_attempts:
                raise MemoryError_(
                    f"injected fault: {direction.upper()} transfer of {nbytes} "
                    f"bytes failed {attempts} times (retry budget exhausted)"
                )
            self._submit(
                Op(
                    kind="delay",
                    name=f"{direction} retry backoff #{attempts}",
                    stream=stream,
                    duration=self.retry.backoff(attempts - 1),
                )
            )

    def memcpy_h2d(
        self,
        dst: DeviceArray,
        host: np.ndarray,
        *,
        stream: Stream | None = None,
        pinned: bool = False,
        name: str | None = None,
    ) -> None:
        """``cudaMemcpy(HostToDevice)`` / ``cudaMemcpyAsync`` on a stream."""
        self._require_live()
        stream = stream or self.default_stream
        outcome = self._transfer_faults("h2d", dst.nbytes, stream)
        dst.fill_from(np.asarray(host, dtype=dst.dtype).reshape(dst.shape))
        if outcome == "corrupt":
            byte, bit = self.faults.corruption_site(dst.nbytes)
            dst.alloc.data[dst.byte_offset + byte] ^= np.uint8(1 << bit)
            self.fault_log.record("h2d-corrupt", f"bit {bit} of byte {byte}")
        st = self._managed.get(dst.alloc.addr)
        if st is not None:
            st.on_device[:] = True
            st.device_dirty[:] = False
        op = self._copy_op("h2d", name or f"H2D {dst.nbytes}B", dst.nbytes, stream, pinned)
        self._submit_or_capture(op)

    def memcpy_d2h(
        self,
        src: DeviceArray,
        *,
        stream: Stream | None = None,
        pinned: bool = False,
        name: str | None = None,
    ) -> np.ndarray:
        """``cudaMemcpy(DeviceToHost)``; returns the host copy."""
        self._require_live()
        stream = stream or self.default_stream
        outcome = self._transfer_faults("d2h", src.nbytes, stream)
        op = self._copy_op("d2h", name or f"D2H {src.nbytes}B", src.nbytes, stream, pinned)
        self._submit_or_capture(op)
        out = src.to_host()
        if outcome == "corrupt":
            byte, bit = self.faults.corruption_site(src.nbytes)
            out.reshape(-1).view(np.uint8)[byte] ^= np.uint8(1 << bit)
            self.fault_log.record("d2h-corrupt", f"bit {bit} of byte {byte}")
        return out

    def memcpy_d2d(
        self,
        dst: DeviceArray,
        src: DeviceArray,
        *,
        stream: Stream | None = None,
        name: str | None = None,
    ) -> None:
        """Device-to-device copy at DRAM bandwidth (read + write)."""
        self._require_live()
        if dst.nbytes != src.nbytes:
            raise MemoryError_("d2d size mismatch")
        stream = stream or self.default_stream
        dst.view[...] = src.view.reshape(dst.shape)
        dst.mark_initialized()
        dur = 2.0 * dst.nbytes / self.gpu.dram_bandwidth
        op = Op(kind="d2d", name=name or f"D2D {dst.nbytes}B", stream=stream, duration=dur, nbytes=dst.nbytes)
        self._submit_or_capture(op)

    # ==================================================================
    # Unified memory
    # ==================================================================
    def managed_to_host(self, arr: DeviceArray, *, stream: Stream | None = None) -> np.ndarray:
        """Host reads a managed array: dirty device pages migrate back."""
        st = self._managed.get(arr.alloc.addr)
        if st is None:
            raise MemoryError_("managed_to_host on a non-managed array")
        stream = stream or self.default_stream
        plan = st.plan_host_access(self.link, self.gpu)
        if not plan.empty:
            op = Op(
                kind="migrate",
                name=f"UM migrate {plan.n_pages}p ->host",
                stream=stream,
                duration=plan.duration,
                nbytes=plan.nbytes,
            )
            self._submit_or_capture(op)
        return arr.to_host()

    def mem_advise(self, arr: DeviceArray, advice: str) -> None:
        """``cudaMemAdvise`` on a managed allocation.

        Supported advice: ``"read_mostly"`` / ``"unset_read_mostly"``
        (the optimization the paper lists as future work: read-mostly
        pages stay duplicated across host reads instead of bouncing).
        """
        st = self._managed.get(arr.alloc.addr)
        if st is None:
            raise MemoryError_("mem_advise on a non-managed array")
        if advice == "read_mostly":
            st.read_mostly = True
        elif advice == "unset_read_mostly":
            st.read_mostly = False
        else:
            raise MemoryError_(f"unknown memory advice {advice!r}")

    def prefetch(self, arr: DeviceArray, *, stream: Stream | None = None) -> None:
        """``cudaMemPrefetchAsync`` of the whole allocation to device."""
        st = self._managed.get(arr.alloc.addr)
        if st is None:
            raise MemoryError_("prefetch on a non-managed array")
        stream = stream or self.default_stream
        plan = st.prefetch_all(self.link, self.gpu)
        if not plan.empty:
            op = Op(
                kind="migrate",
                name=f"UM prefetch {plan.n_pages}p ->dev",
                stream=stream,
                duration=plan.duration,
                nbytes=plan.nbytes,
            )
            self._submit_or_capture(op)

    # ==================================================================
    # Kernel launches
    # ==================================================================
    def _sm_demand(self, stats: KernelStats) -> int:
        occ = compute_occupancy(
            self.gpu,
            stats.block.size,
            shared_mem_per_block=stats.shared_mem_per_block,
            registers_per_thread=stats.registers_per_thread,
            n_blocks=stats.blocks,
        )
        return min(self.gpu.sm_count, -(-stats.blocks // occ.blocks_per_sm))

    def launch(
        self,
        kdef: KernelDef,
        grid: Dim3 | int | tuple[int, ...],
        block: Dim3 | int | tuple[int, ...],
        *args: Any,
        stream: Stream | None = None,
        launch_kind: str = "host",
        name: str | None = None,
    ) -> KernelStats:
        """``kernel<<<grid, block, 0, stream>>>(*args)``.

        Executes functionally now; the timing op is scheduled on the
        stream and resolved at :meth:`synchronize`.  Managed allocations
        touched by the kernel enqueue their page migrations first.

        A kernel-side failure — :class:`KernelRuntimeError` (including
        an injected abort or :class:`WatchdogTimeout`) or
        :class:`InvalidAddressError` — poisons the context: every later
        API call fails with the same error until :meth:`reset`.
        """
        self._require_live()
        stream = stream or self.default_stream
        ordinal = self._launch_ordinal
        self._launch_ordinal += 1
        plan = self.faults
        if (
            plan is not None
            and self._capture is None
            and plan.kernel_aborts(ordinal)
        ):
            kname = name or kdef.name
            self.fault_log.record("kernel-abort", f"{kname} (launch #{ordinal})")
            exc = KernelRuntimeError(
                f"injected fault: kernel {kname!r} (launch #{ordinal}) "
                "aborted mid-flight"
            )
            self._poison(exc)
            raise exc
        try:
            stats = run_kernel(
                kdef,
                grid,
                block,
                args,
                gpu=self.gpu,
                name=name,
                sanitizer=self.sanitizer,
                watchdog_cycles=self.watchdog_cycles,
                hub=self.hub,
                dispatch=self.dispatch,
            )
        except _STICKY_ERRORS as exc:
            self._poison(exc)
            raise
        self._enqueue_migrations(stats, stream)
        op = self._kernel_op(stats, stream, launch_kind)
        self._submit_or_capture(op, stats=stats)
        self.kernel_log.append((stats, op))
        return stats

    def launch_from_device(self, kdef: KernelDef, grid, block, *args: Any,
                           stream: Stream | None = None, name: str | None = None) -> KernelStats:
        """A dynamic-parallelism launch: device-side overhead, no host trip."""
        if not self.gpu.supports_dynamic_parallelism:
            raise LaunchConfigError(f"{self.gpu.name} lacks dynamic parallelism")
        return self.launch(
            kdef, grid, block, *args, stream=stream, launch_kind="device", name=name
        )

    def _kernel_op(self, stats: KernelStats, stream: Stream, launch_kind: str) -> Op:
        def timing_fn(granted_sms: int) -> float:
            return estimate_kernel_time(
                stats, self.gpu, launch_kind=launch_kind, sm_limit=granted_sms
            ).time_s

        return Op(
            kind="kernel",
            name=stats.name,
            stream=stream,
            timing_fn=timing_fn,
            sm_demand=self._sm_demand(stats),
            on_complete=self._counter_emitter(stats),
        )

    def _counter_emitter(self, stats: KernelStats):
        """Completion hook emitting a per-kernel ``counter`` activity
        record (the Chrome-trace occupancy/efficiency series).  Returns
        None when no subscriber wants counters, so unprofiled runs pay
        nothing at completion time."""
        hub = self.hub
        if hub is None or not hub.wants("counter"):
            return None

        def emit(op: Op) -> None:
            occ = compute_occupancy(
                self.gpu,
                stats.block.size,
                shared_mem_per_block=stats.shared_mem_per_block,
                registers_per_thread=stats.registers_per_thread,
                n_blocks=stats.blocks,
            )
            hub.emit(
                "counter",
                stats.name,
                track=op.stream.name,
                start=op.end_time,
                end=op.end_time,
                achieved_occupancy=occ.occupancy,
                warp_execution_efficiency=stats.warp_execution_efficiency,
                branch_efficiency=stats.branch_efficiency,
                gld_efficiency=stats.gld_efficiency,
                shared_efficiency=stats.shared_efficiency,
            )

        return emit

    def _enqueue_migrations(self, stats: KernelStats, stream: Stream) -> None:
        for addr, (reads, writes) in stats.managed_touched.items():
            st = self._managed.get(addr)
            if st is None:
                continue
            plan = st.plan_device_access(
                np.fromiter(reads, dtype=np.int64, count=len(reads)),
                np.fromiter(writes, dtype=np.int64, count=len(writes)),
                self.link,
                self.gpu,
            )
            if not plan.empty:
                op = Op(
                    kind="migrate",
                    name=f"UM migrate {plan.n_pages}p ->dev",
                    stream=stream,
                    duration=plan.duration,
                    nbytes=plan.nbytes,
                )
                self._submit_or_capture(op)

    # ==================================================================
    # Streams, events, synchronization
    # ==================================================================
    def stream(self, name: str | None = None) -> Stream:
        """``cudaStreamCreate``."""
        s = Stream(self, name=name)
        self.engine.register_stream(s)
        return s

    def event(self, name: str = "event") -> Event:
        """``cudaEventCreate``."""
        return Event(name=name)

    def record_event(self, event: Event, *, stream: Stream | None = None) -> None:
        """``cudaEventRecord``."""
        stream = stream or self.default_stream
        event.recorded = True
        event.done_time = None
        self._submit_or_capture(
            Op(kind="event_record", name=f"record {event.name}", stream=stream, event=event)
        )

    def wait_event(self, event: Event, *, stream: Stream | None = None) -> None:
        """``cudaStreamWaitEvent``."""
        stream = stream or self.default_stream
        self._submit_or_capture(
            Op(kind="event_wait", name=f"wait {event.name}", stream=stream, event=event)
        )

    def synchronize(self) -> float:
        """``cudaDeviceSynchronize``: drain all streams, return device time."""
        self._require_live()
        if self._capture is not None:
            raise StreamError("cannot synchronize during graph capture")
        t = self.engine.run_until_idle()
        self.engine.drop_completed()
        return t

    @contextmanager
    def timer(self):
        """Measure the simulated duration of a region::

            with rt.timer() as t:
                ... enqueue work ...
            print(t.elapsed)
        """

        class _Timer:
            elapsed = 0.0

        t = _Timer()
        start = self.engine.now
        yield t
        t.elapsed = self.synchronize() - start

    @property
    def now(self) -> float:
        """Current device-clock time (advances at synchronize)."""
        return self.engine.now

    # ==================================================================
    # Task graphs
    # ==================================================================
    def _submit_or_capture(self, op: Op, stats: KernelStats | None = None) -> None:
        if self._capture is None:
            plan = self.faults
            if plan is not None:
                stall = plan.stall_before(self._op_ordinal)
                if stall > 0.0:
                    self.fault_log.record(
                        "stream-stall", f"{stall * 1e3:g} ms before {op.name}"
                    )
                    self.engine.submit(
                        Op(
                            kind="delay",
                            name=f"injected stall before {op.name}",
                            stream=op.stream,
                            duration=stall,
                        )
                    )
            self._op_ordinal += 1
            self.engine.submit(op)
            return
        graph = self._capture
        # Freeze the recipe: re-create a fresh Op per graph launch, with
        # graph-node overhead for kernels.
        if op.kind == "kernel" and stats is not None:
            def submit(stream: Stream, _stats=stats) -> None:
                def timing_fn(granted: int) -> float:
                    return estimate_kernel_time(
                        _stats, self.gpu, launch_kind="graph", sm_limit=granted
                    ).time_s

                self.engine.submit(
                    Op(
                        kind="kernel",
                        name=f"[graph] {_stats.name}",
                        stream=stream,
                        timing_fn=timing_fn,
                        sm_demand=self._sm_demand(_stats),
                    )
                )
        else:
            def submit(stream: Stream, _op=op) -> None:
                self.engine.submit(
                    Op(
                        kind=_op.kind,
                        name=f"[graph] {_op.name}",
                        stream=stream,
                        duration=_op.duration,
                        nbytes=_op.nbytes,
                        event=_op.event,
                    )
                )

        graph.add(GraphNode(kind=op.kind, name=op.name, submit=submit))

    def graph_capture_begin(self) -> None:
        """Begin stream capture (``cudaStreamBeginCapture``).

        Deviation from CUDA: the captured operations execute
        *functionally* once during capture, which is how the simulator
        learns their statistics; their timing is excluded.
        """
        if self._capture is not None:
            raise GraphError("capture already in progress")
        if not self.gpu.supports_task_graphs:
            raise GraphError(f"{self.gpu.name} does not support task graphs")
        self._capture = TaskGraph()

    def graph_capture_end(self) -> TaskGraph:
        """End capture and return the graph (``cudaStreamEndCapture``)."""
        if self._capture is None:
            raise GraphError("no capture in progress")
        g = self._capture
        self._capture = None
        return g

    def graph_launch(self, graph: ExecGraph, *, stream: Stream | None = None) -> None:
        """``cudaGraphLaunch``: one host call submits every node."""
        self._require_live()
        if not isinstance(graph, ExecGraph):
            raise GraphError("graph_launch needs an instantiated ExecGraph")
        stream = stream or self.default_stream
        self.engine.submit(
            Op(
                kind="kernel",
                name="graph dispatch",
                stream=stream,
                duration=self.gpu.graph_launch_overhead_s,
                sm_demand=1,
            )
        )
        for node in graph.nodes:
            node.submit(stream)

    # ==================================================================
    # Reporting
    # ==================================================================
    def profile_report(self, *, diagnose: bool = False) -> str:
        """An nvprof-style per-kernel summary of everything launched.

        With ``diagnose=True``, appends the performance doctor's
        findings for each kernel that triggered any.
        """
        from repro.host.profiler import build_report

        report = build_report(self.kernel_log, self.gpu)
        if diagnose:
            from repro.host.doctor import diagnose as run_doctor

            seen: set[str] = set()
            extra: list[str] = []
            for stats, _ in self.kernel_log:
                if stats.name in seen:
                    continue
                seen.add(stats.name)
                findings = run_doctor(stats, self.gpu)
                if findings:
                    extra.append(f"\n{stats.name}:")
                    extra.extend(f"  {f}" for f in findings)
            if extra:
                report += "\n\nperformance doctor findings:" + "".join(
                    f"\n{line}" for line in extra
                )
        return report

    def reset(self) -> None:
        """Clear timeline, logs and any sticky error (``cudaDeviceReset``
        analog; keeps memory contents)."""
        self.timeline.clear()
        self.kernel_log.clear()
        self._sticky = None

    def close(self) -> None:
        """Tear the context down; with leakcheck enabled, still-live
        allocations become findings."""
        san = self.sanitizer
        if san is not None and san.enabled("leakcheck"):
            san.check_leaks(self)
