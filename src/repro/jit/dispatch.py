"""The jit dispatcher: record, compile, replay, bail.

:class:`JitDispatch` is the third backend beside
:class:`~repro.exec.dispatch.ReferenceDispatch` and
:class:`~repro.exec.dispatch.FastDispatch`.  The executor brackets each
launch with :meth:`begin_launch` / :meth:`end_launch`; in between every
``analyze_global`` / ``analyze_shared`` call is served according to the
launch's mode:

* **record** — first sighting of a trace key: delegate to the reference
  analyzers while recording each access's guard fingerprint and summary;
  a completed launch is compiled and published to the artifact store.
* **replay** — a compiled artifact exists: walk its ``REPLAY`` tuple,
  verify each access with the linear-time fingerprint, and return the
  embedded summary without any sorting.
* **reference** — untraceable launches, poisoned keys, and everything
  after a *bailout* (guard mismatch, event-kind mismatch, trace
  exhaustion): plain reference analysis, always correct.

A bailout is per launch and per key: the current launch degrades to
reference mid-flight (every summary already returned passed its guard,
so the launch stays correct), the key is poisoned so later launches
skip straight to reference, and the event is counted in
:class:`JitCounters` and emitted to the activity hub when one is
attached — the same visibility contract as the scheduler's
divergence-fallback telemetry.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.exec.dispatch import ExecCounters, ReferenceDispatch
from repro.jit.codegen import (
    GlobalEvent,
    JitArtifact,
    SharedEvent,
    compile_artifact,
    generate_source,
)
from repro.jit.guards import lane_fingerprint
from repro.jit.store import ArtifactStore, default_store
from repro.jit.tracekey import Untraceable, launch_key

__all__ = ["MAX_TRACE_EVENTS", "JitCounters", "JitDispatch"]

#: record-mode event cap: a launch tracing more accesses than this is
#: dominated by unique (likely data-dependent) access sites and would
#: produce a huge artifact with no replay win — poison it instead
MAX_TRACE_EVENTS = 4096
_ENV_MAX = "REPRO_JIT_MAX_EVENTS"


@dataclass
class JitCounters(ExecCounters):
    """Execution counters extended with the jit life-cycle.

    ``global_jit``/``shared_jit`` count accesses answered from a
    compiled artifact; the reference fields inherited from
    :class:`ExecCounters` count record-mode and post-bailout analyses.
    """

    global_jit: int = 0
    shared_jit: int = 0
    jit_traced: int = 0      #: launches recorded (cold keys)
    jit_compiled: int = 0    #: traces compiled into artifacts
    jit_replayed: int = 0    #: launches started from an artifact
    jit_bailouts: int = 0    #: replays degraded to reference mid-launch
    jit_untraceable: int = 0  #: launches with un-keyable arguments

    def as_dict(self) -> dict[str, int]:
        out = super().as_dict()
        out.update(
            global_jit=self.global_jit,
            shared_jit=self.shared_jit,
            jit_traced=self.jit_traced,
            jit_compiled=self.jit_compiled,
            jit_replayed=self.jit_replayed,
            jit_bailouts=self.jit_bailouts,
            jit_untraceable=self.jit_untraceable,
        )
        return out


@dataclass
class _LaunchState:
    """Per-launch mode; lives on a stack for dynamic parallelism."""

    mode: str  # "record" | "replay" | "reference"
    kernel: str
    key: str | None = None
    events: list = field(default_factory=list)
    artifact: JitArtifact | None = None
    cursor: int = 0
    overflowed: bool = False


class JitDispatch(ReferenceDispatch):
    """Trace-JIT memory-analysis backend (see module docstring)."""

    name = "jit"

    def __init__(
        self,
        store: ArtifactStore | None = None,
        *,
        max_trace_events: int | None = None,
    ) -> None:
        self.counters = JitCounters()
        self.store = store if store is not None else default_store()
        self.hub = None
        if max_trace_events is None:
            env = os.environ.get(_ENV_MAX)
            max_trace_events = int(env) if env else MAX_TRACE_EVENTS
        self.max_trace_events = max_trace_events
        self._stack: list[_LaunchState] = []

    # ------------------------------------------------------------------
    # launch bracketing (called by repro.simt.executor.run_kernel)
    # ------------------------------------------------------------------
    def begin_launch(self, kdef, grid, block, gpu, args) -> None:
        """Resolve the launch's trace key and pick its mode."""
        try:
            key = launch_key(kdef, grid, block, gpu, args)
        except Untraceable:
            self.counters.jit_untraceable += 1
            self._stack.append(_LaunchState(mode="reference", kernel=kdef.name))
            return
        artifact = self.store.lookup(key)
        if artifact is not None:
            self.counters.jit_replayed += 1
            self._stack.append(
                _LaunchState(
                    mode="replay", kernel=kdef.name, key=key, artifact=artifact
                )
            )
        elif self.store.is_poisoned(key):
            self._stack.append(
                _LaunchState(mode="reference", kernel=kdef.name, key=key)
            )
        else:
            self.counters.jit_traced += 1
            self._stack.append(
                _LaunchState(mode="record", kernel=kdef.name, key=key)
            )

    def end_launch(self, completed: bool) -> None:
        """Close the launch; a completed recording is compiled + stored.

        A launch that raised (sanitizer abort, injected fault, watchdog)
        discards its partial trace without poisoning: the next attempt
        simply retraces.
        """
        state = self._stack.pop()
        if state.mode != "record" or not completed:
            return
        assert state.key is not None
        if state.overflowed:
            self.store.poison(state.key)
            self._emit("overflow", state)
            return
        try:
            source = generate_source(state.key, state.kernel, state.events)
            artifact = compile_artifact(state.key, state.kernel, source)
        except Exception:
            # non-finite summary field or malformed codegen: never let
            # the JIT fail a run — ban the key and stay on reference
            self.store.poison(state.key)
            self.counters.jit_bailouts += 1
            self._emit("codegen-failed", state)
            return
        self.counters.jit_compiled += 1
        self.store.put(state.key, artifact)

    # ------------------------------------------------------------------
    # per-access analysis
    # ------------------------------------------------------------------
    def analyze_global(
        self,
        addrs,
        mask,
        itemsize: int,
        *,
        warp_size: int,
        transaction_bytes: int,
        sector_bytes: int,
    ):
        state = self._stack[-1] if self._stack else None
        if state is not None and state.mode == "replay":
            fn = self._next_replay(state, "global")
            if fn is not None:
                summary = fn(
                    addrs, mask, itemsize, warp_size, transaction_bytes,
                    sector_bytes,
                )
                if summary is not None:
                    self.counters.global_jit += 1
                    return summary
                self._bail(state, "global-guard")
            # fall through to reference (state.mode is now "reference")
        summary = super().analyze_global(
            addrs,
            mask,
            itemsize,
            warp_size=warp_size,
            transaction_bytes=transaction_bytes,
            sector_bytes=sector_bytes,
        )
        if state is not None and state.mode == "record":
            if len(state.events) >= self.max_trace_events:
                state.overflowed = True
            else:
                state.events.append(
                    GlobalEvent(
                        fp=lane_fingerprint(addrs, mask),
                        itemsize=itemsize,
                        warp_size=warp_size,
                        transaction_bytes=transaction_bytes,
                        sector_bytes=sector_bytes,
                        summary=summary,
                    )
                )
        return summary

    def analyze_shared(
        self,
        byte_offsets,
        mask,
        *,
        warp_size: int,
        nbanks: int,
        bank_bytes: int,
    ):
        state = self._stack[-1] if self._stack else None
        if state is not None and state.mode == "replay":
            fn = self._next_replay(state, "shared")
            if fn is not None:
                summary = fn(byte_offsets, mask, warp_size, nbanks, bank_bytes)
                if summary is not None:
                    self.counters.shared_jit += 1
                    return summary
                self._bail(state, "shared-guard")
        summary = super().analyze_shared(
            byte_offsets,
            mask,
            warp_size=warp_size,
            nbanks=nbanks,
            bank_bytes=bank_bytes,
        )
        if state is not None and state.mode == "record":
            if len(state.events) >= self.max_trace_events:
                state.overflowed = True
            else:
                state.events.append(
                    SharedEvent(
                        fp=lane_fingerprint(byte_offsets, mask),
                        warp_size=warp_size,
                        nbanks=nbanks,
                        bank_bytes=bank_bytes,
                        summary=summary,
                    )
                )
        return summary

    # ------------------------------------------------------------------
    def _next_replay(self, state: _LaunchState, kind: str):
        """The next replay function if it matches ``kind``, else bail.

        An exhausted trace (the launch issues *more* accesses than were
        recorded — a data-dependent loop ran longer) and a kind mismatch
        (control flow reordered access sites) both invalidate the
        artifact for this key.
        """
        artifact = state.artifact
        assert artifact is not None
        if state.cursor >= len(artifact.replay):
            self._bail(state, f"{kind}-trace-exhausted")
            return None
        ev_kind, fn = artifact.replay[state.cursor]
        if ev_kind != kind:
            self._bail(state, f"{kind}-kind-mismatch")
            return None
        state.cursor += 1
        return fn

    def _bail(self, state: _LaunchState, reason: str) -> None:
        state.mode = "reference"
        self.counters.jit_bailouts += 1
        if state.key is not None:
            self.store.poison(state.key)
        self._emit(reason, state)

    def _emit(self, reason: str, state: _LaunchState) -> None:
        hub = self.hub
        if hub is not None and hub.wants("jit"):
            hub.emit(
                "jit",
                f"bailout {state.kernel}",
                track="driver",
                reason=reason,
                key=(state.key or "")[:12],
            )
