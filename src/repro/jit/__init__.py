"""Trace-JIT execution tier: compile the analysis hot loop per launch.

The simulator's cost is dominated by per-access memory analysis — for
every warp-wide load/store the reference backend sorts lane addresses
and deduplicates segments at three granularities.  For sweeps the same
kernel is launched over and over with identical shapes and addresses,
so the analysis answers never change.  This package exploits that:

* the first launch of a ``(kernel, params, system, arch)`` *trace key*
  runs through the reference analyzers while recording every access's
  input fingerprint and output summary;
* the recorded trace is specialized into generated Python source — one
  guard-then-return function per access — compiled with
  ``compile()``/``exec`` and memoized (in process and on disk through
  the content-addressed :class:`~repro.sched.cache.ResultCache`);
* later launches with the same key *replay* the artifact: each access
  is verified by a linear-time lane fingerprint and the precomputed
  summary is returned without sorting anything;
* any guard miss (data-dependent addressing, changed iteration counts)
  bails the launch back to the reference path, poisons the key, and is
  recorded in the dispatch counters and the activity hub.

Select it like any other backend: ``use_backend("jit")``,
``REPRO_BACKEND=jit``, or ``--backend jit`` on the CLI.  The
differential suite locks jit results byte-identical to reference for
every registered benchmark.
"""

from repro.jit.codegen import JitArtifact, compile_artifact, generate_source
from repro.jit.dispatch import JitCounters, JitDispatch
from repro.jit.store import (
    JIT_SCHEMA,
    ArtifactStore,
    default_store,
    jit_stats,
    reset_jit_store,
)
from repro.jit.tracekey import Untraceable, launch_key

__all__ = [
    "JIT_SCHEMA",
    "ArtifactStore",
    "JitArtifact",
    "JitCounters",
    "JitDispatch",
    "Untraceable",
    "compile_artifact",
    "default_store",
    "generate_source",
    "jit_stats",
    "launch_key",
    "reset_jit_store",
]
