"""Replay guards: linear-time fingerprints of per-access lane vectors.

A compiled artifact may only answer for an access whose inputs match
what the trace recorded, and the whole point of the JIT is that this
check must be much cheaper than the reference analysis it skips.  The
reference analyzers sort lane addresses per warp and deduplicate
segments at three granularities (``O(n log n)`` with several passes);
the guard is a single masked pass.

The fingerprint is position-sensitive: inactive lanes are replaced by
a sentinel and every lane is weighted by a per-position multiplier (a
Weyl sequence on the golden-ratio constant), so both the multiset of
active addresses *and* their assignment to lanes/warps — which the warp
analyzers depend on — are covered.  Together with the plain sum, the
lane count, and the active count, a disagreeing access has to collide
two independent 64-bit checksums to slip through; the differential
matrix in ``tests/differential`` locks the end-to-end equality
empirically on every registered benchmark.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lane_fingerprint"]

#: golden-ratio multiplier (same constant as splitmix64's increment)
_GOLD = np.uint64(0x9E3779B97F4A7C15)

_weights_memo: dict[int, np.ndarray] = {}


def _weights(n: int) -> np.ndarray:
    """Per-lane uint64 multipliers, memoized per vector length."""
    w = _weights_memo.get(n)
    if w is None:
        w = np.arange(n, dtype=np.uint64) * _GOLD + np.uint64(1)
        w.setflags(write=False)
        _weights_memo[n] = w
    return w


def lane_fingerprint(
    values: np.ndarray, mask: np.ndarray | None
) -> tuple[int, int, int, int]:
    """``(n_lanes, n_active, sum, weighted_sum)`` of a masked lane vector.

    Sums are taken mod 2**64 over the sentinel-masked vector, so the
    fingerprint is exactly reproducible across runs and processes.
    """
    values = np.asarray(values, dtype=np.int64)
    if not values.flags["C_CONTIGUOUS"]:
        values = np.ascontiguousarray(values)
    n = values.shape[0]
    if mask is None:
        active = n
        work = values.view(np.uint64)
    else:
        mask = np.asarray(mask, dtype=bool)
        active = int(mask.sum())
        work = np.where(mask, values, -1).view(np.uint64)
    lin = int(work.sum(dtype=np.uint64))
    weighted = int((work * _weights(n)).sum(dtype=np.uint64))
    return (n, active, lin, weighted)
