"""Trace keys: the identity of one kernel-launch specialization.

A JIT artifact is only valid for launches whose analysis inputs are
guaranteed to *start from* the same state the trace saw, so the key
hashes everything the recorded address streams can depend on up front:
the kernel's source and metadata, the launch geometry, the full
:class:`~repro.arch.spec.GPUSpec` (warp size, bank layout, transaction
granularities), and a per-argument signature — device arrays by base
address/shape/dtype (the deterministic allocator makes addresses repeat
across runs), scalars by exact value.  Anything the tracer cannot
fingerprint makes the launch :class:`Untraceable` and it runs on the
reference path instead.

Data-dependent behaviour (gather indices read from device memory,
value-dependent loop trip counts) is deliberately *not* part of the
key; it is caught at replay time by the per-access guards in
:mod:`repro.jit.guards`.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import asdict
from typing import Any, Callable

import numpy as np

from repro.arch.spec import GPUSpec
from repro.mem.buffer import DeviceArray
from repro.simt.dim3 import Dim3
from repro.simt.kernel import KernelDef
from repro.simt.texture import TextureView

__all__ = ["Untraceable", "launch_key", "kernel_source"]

#: bump to invalidate every persisted artifact (key-layout changes)
_KEY_VERSION = 1

_source_memo: dict[Callable[..., Any], str] = {}


class Untraceable(Exception):
    """The launch carries an argument the tracer cannot fingerprint."""


def kernel_source(kdef: KernelDef) -> str:
    """The kernel body's source text (memoized per function object)."""
    cached = _source_memo.get(kdef.func)
    if cached is None:
        try:
            cached = inspect.getsource(kdef.func)
        except (TypeError, OSError):
            cached = "<source unavailable>"
        _source_memo[kdef.func] = cached
    return cached


def _arg_signature(arg: Any) -> Any:
    """A JSON-able identity for one launch argument.

    Device arrays sign by placement and layout — their *contents* are
    guarded at replay, not keyed, so rewriting a buffer in place does
    not force a retrace unless the address stream actually changes.
    """
    if isinstance(arg, DeviceArray):
        return {
            "k": "devarray",
            "addr": int(arg.base_addr),
            "shape": list(arg.shape),
            "dtype": str(arg.dtype),
        }
    if isinstance(arg, TextureView):
        return {
            "k": "tex",
            "base": _arg_signature(arg.storage),
            "width": arg.width,
            "height": arg.height,
            "tile": arg.tile,
        }
    if isinstance(arg, (bool, int, float, str, type(None))):
        return {"k": "scalar", "v": repr(arg)}
    if isinstance(arg, np.generic):
        return {"k": "scalar", "v": repr(arg.item()), "dtype": str(arg.dtype)}
    raise Untraceable(
        f"argument of type {type(arg).__name__} has no trace signature"
    )


def launch_key(
    kdef: KernelDef,
    grid: Dim3,
    block: Dim3,
    gpu: GPUSpec,
    args: tuple[Any, ...] | list[Any],
) -> str:
    """SHA-256 identity of one launch's analysis-relevant inputs."""
    material = {
        "v": _KEY_VERSION,
        "kernel": {
            "name": kdef.name,
            "registers": kdef.registers,
            "source": kernel_source(kdef),
        },
        "grid": [grid.x, grid.y, grid.z],
        "block": [block.x, block.y, block.z],
        "gpu": asdict(gpu),
        "args": [_arg_signature(a) for a in args],
    }
    canonical = json.dumps(
        material, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode()).hexdigest()
