"""Artifact store: memoized + persisted compiled traces.

Two tiers, both keyed by the launch's trace key:

* an in-process memo of compiled :class:`JitArtifact` objects — warm
  launches inside one process (sweep x-values, repeated rounds) pay a
  dict lookup;
* an on-disk tier reusing the content-addressed
  :class:`~repro.sched.cache.ResultCache` (atomic tmp+fsync+rename
  writes, payload checksums, quarantine of torn entries), so a second
  *process* — a fresh CLI run, a pool worker, a fleet worker on the
  same directory — skips tracing too and only pays one ``compile()``.

Poisoned keys (launches whose replay guards failed: data-dependent
addressing) are remembered in both tiers so every later launch with
that key goes straight to the reference path instead of thrashing
between retrace and bailout.

The store defaults to ``.repro-cache/jit`` next to the scheduler's
result cache; ``REPRO_JIT_CACHE_DIR`` overrides the directory and the
value ``off`` disables persistence entirely.  A process-global default
store backs every :class:`~repro.jit.dispatch.JitDispatch` unless one
is injected, and :func:`jit_stats` snapshots it for the ``--stats``
sidecar.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from repro.common.errors import ReproError
from repro.jit.codegen import JitArtifact, compile_artifact
from repro.sched.cache import DEFAULT_CACHE_DIR, ResultCache

__all__ = [
    "JIT_SCHEMA",
    "DEFAULT_JIT_CACHE_DIR",
    "ArtifactStore",
    "default_store",
    "reset_jit_store",
    "jit_stats",
]

JIT_SCHEMA = "repro-jit-artifact/1"
DEFAULT_JIT_CACHE_DIR = str(Path(DEFAULT_CACHE_DIR) / "jit")
_ENV_DIR = "REPRO_JIT_CACHE_DIR"


class ArtifactStore:
    """Compiled-trace cache with hit/miss/poison accounting."""

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get(_ENV_DIR) or DEFAULT_JIT_CACHE_DIR
        self.root = str(root)
        self._memo: dict[str, JitArtifact] = {}
        self._poisoned: set[str] = set()
        self._disk: ResultCache | None = (
            None if self.root == "off" else ResultCache(self.root)
        )
        self.memo_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.poisoned = 0
        self.disk_errors = 0

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> JitArtifact | None:
        """Find a compiled artifact; promotes disk entries to the memo.

        Returns ``None`` both for a genuine miss and for a poisoned key
        — callers distinguish via :meth:`is_poisoned` (a poisoned key
        must run on the reference path, a miss should be traced).
        """
        if key in self._poisoned:
            return None
        art = self._memo.get(key)
        if art is not None:
            self.memo_hits += 1
            return art
        if self._disk is not None:
            payload = self._disk.get(key)
            if payload is not None and payload.get("schema") == JIT_SCHEMA:
                if payload.get("poisoned"):
                    self._poisoned.add(key)
                    return None
                try:
                    art = compile_artifact(
                        key, str(payload.get("kernel", "?")),
                        str(payload["source"]),
                    )
                except Exception:
                    # an artifact from a different code version (or a
                    # hand-edited file): recompute rather than crash
                    art = None
                if art is not None:
                    self.disk_hits += 1
                    self._memo[key] = art
                    return art
        self.misses += 1
        return None

    def is_poisoned(self, key: str) -> bool:
        return key in self._poisoned

    def put(self, key: str, artifact: JitArtifact) -> None:
        """Publish a freshly compiled artifact to both tiers."""
        self._memo[key] = artifact
        self.stores += 1
        self._disk_put(
            key,
            {
                "schema": JIT_SCHEMA,
                "key": key,
                "kernel": artifact.kernel,
                "events": artifact.n_events,
                "source": artifact.source,
            },
        )

    def poison(self, key: str) -> None:
        """Ban a key: replays diverged, so it must stay on reference."""
        if key in self._poisoned:
            return
        self._poisoned.add(key)
        self._memo.pop(key, None)
        self.poisoned += 1
        self._disk_put(
            key, {"schema": JIT_SCHEMA, "key": key, "poisoned": True}
        )

    def _disk_put(self, key: str, payload: dict[str, Any]) -> None:
        """Best-effort persistence: an unwritable store must never fail
        a run, so the disk tier is dropped on the first error."""
        if self._disk is None:
            return
        try:
            self._disk.put(key, payload)
        except ReproError:
            self._disk = None
            self.disk_errors += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Counters for the ``--stats`` sidecar's ``jit`` section."""
        return {
            "dir": self.root,
            "persistent": self._disk is not None,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "poisoned": self.poisoned,
            "disk_errors": self.disk_errors,
        }


_default: ArtifactStore | None = None


def default_store() -> ArtifactStore:
    """The process-global store shared by every jit dispatcher."""
    global _default
    if _default is None:
        _default = ArtifactStore()
    return _default


def reset_jit_store() -> None:
    """Drop the global store (tests; re-resolves ``REPRO_JIT_CACHE_DIR``)."""
    global _default
    _default = None


def jit_stats() -> dict[str, Any]:
    """Snapshot of the global store's counters."""
    return default_store().stats()
