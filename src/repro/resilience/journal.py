"""Append-only NDJSON run journal (``repro-journal/1``).

A :class:`RunJournal` checkpoints every completed unit of scheduler
work — one line per job, flushed as soon as the job's payload is known
— so an interrupted sweep loses nothing that finished.  ``--resume
<run-id>`` reopens the journal, and the scheduler skips any job whose
fingerprint is already recorded, replaying the stored payload instead
(byte-identical: payloads are the same JSON-ready dicts the result
types round-trip through).

Layout: one ``<run-id>.ndjson`` file per run under ``.repro-journal/``
(git-ignored).  The first line is a header record; every subsequent
line is one completed job::

    {"schema": "repro-journal/1", "run_id": "...", "command": "sweep", ...}
    {"job": "<fingerprint>", "payload": {...}, "meta": {...}}

The reader tolerates a torn final line (the process died mid-append)
and skips unparsable lines instead of refusing the whole journal, so a
SIGKILL'd run still resumes from its last complete checkpoint.

A job's *fingerprint* hashes the same dependency closure the result
cache keys on — benchmark sources, resolved system spec, parameters,
sweep value, and requested backend — so a resume never replays stale
work across a code or configuration change.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Any

from repro.common.errors import ReproError

__all__ = [
    "JOURNAL_SCHEMA",
    "DEFAULT_JOURNAL_DIR",
    "RunJournal",
    "job_fingerprint",
    "list_runs",
    "gc_runs",
    "new_run_id",
]

JOURNAL_SCHEMA = "repro-journal/1"
DEFAULT_JOURNAL_DIR = ".repro-journal"


def new_run_id() -> str:
    """A short collision-resistant id for a fresh run."""
    return uuid.uuid4().hex[:12]


def job_fingerprint(spec) -> str:
    """Stable identity of one :class:`~repro.sched.runner.JobSpec`.

    Shares the result cache's key material (sources × system × params ×
    value × backend) so journal identity and cache identity invalidate
    together; the two hashes differ only by a domain prefix, keeping a
    journal line from ever being mistaken for a cache key.
    """
    from dataclasses import asdict

    from repro.sched.cache import _canonical, source_fingerprint
    from repro.sched.runner import _resolve

    bench = _resolve(spec)
    material = {
        "domain": "repro-journal",
        "benchmark": spec.benchmark,
        "sources": source_fingerprint(type(bench)),
        "system": asdict(bench.system),
        "kind": spec.kind,
        "params": spec.params,
        "values": list(spec.values) if spec.values is not None else None,
        "backend": spec.backend,
    }
    return hashlib.sha256(_canonical(material).encode()).hexdigest()


class RunJournal:
    """One run's append-only checkpoint file.

    Use :meth:`create` for a fresh run and :meth:`resume` to reopen an
    existing one; :meth:`record` appends and flushes one completed job,
    and :attr:`completed` maps job fingerprints to their stored
    payloads (pre-populated on resume).
    """

    def __init__(
        self,
        path: Path,
        run_id: str,
        *,
        completed: dict[str, Any] | None = None,
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.path = path
        self.run_id = run_id
        self.meta = dict(meta or {})
        #: fingerprint -> payload for every job already checkpointed
        self.completed: dict[str, Any] = dict(completed or {})
        self._fh = None

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str | Path = DEFAULT_JOURNAL_DIR,
        *,
        run_id: str | None = None,
        meta: dict[str, Any] | None = None,
    ) -> "RunJournal":
        """Start a fresh journal; writes the header line immediately."""
        run_id = run_id or new_run_id()
        root = Path(root)
        path = root / f"{run_id}.ndjson"
        if path.exists():
            raise ReproError(
                f"journal {path} already exists; pass --resume {run_id} "
                "to continue it or pick another --run-id"
            )
        journal = cls(path, run_id, meta=meta)
        try:
            root.mkdir(parents=True, exist_ok=True)
            journal._fh = path.open("a")
        except OSError as exc:
            raise ReproError(
                f"journal directory {root} is not writable: {exc}; "
                "pick another --journal-dir or pass --no-journal"
            ) from None
        journal._append(
            {"schema": JOURNAL_SCHEMA, "run_id": run_id, **journal.meta}
        )
        return journal

    @classmethod
    def resume(
        cls, root: str | Path, run_id: str
    ) -> "RunJournal":
        """Reopen an existing journal, loading its completed jobs."""
        path = Path(root) / f"{run_id}.ndjson"
        if not path.exists():
            raise ReproError(
                f"no journal for run {run_id!r} under {root} "
                f"(expected {path})"
            )
        header, completed = cls._load(path)
        if header.get("schema") != JOURNAL_SCHEMA:
            raise ReproError(
                f"journal {path} has schema {header.get('schema')!r}, "
                f"expected {JOURNAL_SCHEMA}"
            )
        journal = cls(
            path,
            header.get("run_id", run_id),
            completed=completed,
            meta={k: v for k, v in header.items() if k not in ("schema", "run_id")},
        )
        try:
            cls._heal_torn_tail(path)
            journal._fh = path.open("a")
        except OSError as exc:
            raise ReproError(f"journal {path} is not writable: {exc}") from None
        return journal

    @classmethod
    def attach(
        cls,
        root: str | Path,
        *,
        run_id: str,
        meta: dict[str, Any] | None = None,
    ) -> "RunJournal":
        """Resume the journal if it exists, create it otherwise.

        The fleet path: a worker re-joining a run under the same id
        keeps appending to its own journal instead of refusing the run.
        """
        path = Path(root) / f"{run_id}.ndjson"
        if path.exists():
            return cls.resume(root, run_id)
        return cls.create(root, run_id=run_id, meta=meta)

    @staticmethod
    def _heal_torn_tail(path: Path) -> None:
        """Terminate a torn final line so new appends start on a fresh
        line; the loader already skips the unparsable remnant."""
        with path.open("r+b") as fh:
            fh.seek(0, os.SEEK_END)
            if fh.tell() == 0:
                return
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) != b"\n":
                fh.write(b"\n")

    @staticmethod
    def _load(path: Path) -> tuple[dict[str, Any], dict[str, Any]]:
        """Parse a journal file, tolerating torn or garbage lines."""
        header: dict[str, Any] = {}
        completed: dict[str, Any] = {}
        with path.open() as fh:
            for i, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    # torn append (crash mid-write) — skip, keep reading:
                    # later complete lines are still valid checkpoints
                    continue
                if i == 0 or ("schema" in obj and not header):
                    header = obj
                elif "job" in obj:
                    completed[obj["job"]] = obj.get("payload")
        return header, completed

    # ------------------------------------------------------------------
    def record(
        self,
        fingerprint: str,
        payload: Any,
        *,
        meta: dict[str, Any] | None = None,
    ) -> None:
        """Checkpoint one completed job (append + flush)."""
        entry: dict[str, Any] = {"job": fingerprint, "payload": payload}
        if meta:
            entry["meta"] = meta
        self._append(entry)
        self.completed[fingerprint] = payload

    def _append(self, obj: dict[str, Any]) -> None:
        if self._fh is None:  # pragma: no cover - defensive
            raise ReproError(f"journal {self.path} is not open for writing")
        self._fh.write(json.dumps(obj, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.completed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunJournal(run_id={self.run_id!r}, completed={len(self)})"


# ----------------------------------------------------------------------
# journal-directory tools (``repro journal ls/show/gc``)

def _dir_mtime(path: Path) -> float:
    """Newest mtime under a run directory (activity, not creation)."""
    newest = path.stat().st_mtime
    for child in path.rglob("*"):
        try:
            newest = max(newest, child.stat().st_mtime)
        except OSError:
            continue
    return newest


def list_runs(root: str | Path) -> list[dict[str, Any]]:
    """Every run under a journal directory, newest first.

    Covers both plain ``<run-id>.ndjson`` journals and ``<run-id>.fleet``
    coordination directories.  Each entry carries ``run_id``, ``kind``
    (``"run"`` | ``"fleet"``), ``command``, ``jobs`` (completed count),
    ``mtime``, and ``path``.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    out: list[dict[str, Any]] = []
    for path in root.glob("*.ndjson"):
        header, completed = RunJournal._load(path)
        out.append({
            "run_id": path.stem,
            "kind": "run",
            "command": header.get("command", ""),
            "jobs": len(completed),
            "mtime": path.stat().st_mtime,
            "path": str(path),
        })
    for path in root.glob("*.fleet"):
        if not path.is_dir():
            continue
        manifest: dict[str, Any] = {}
        try:
            manifest = json.loads((path / "manifest.json").read_text())
        except (OSError, json.JSONDecodeError):
            pass
        completed: set[str] = set()
        for jf in (path / "journals").glob("*.ndjson"):
            _, done = RunJournal._load(jf)
            completed.update(done)
        out.append({
            "run_id": path.name[: -len(".fleet")],
            "kind": "fleet",
            "command": manifest.get("command", ""),
            "jobs": len(completed),
            "total": len(manifest.get("jobs", [])) or None,
            "mtime": _dir_mtime(path),
            "path": str(path),
        })
    out.sort(key=lambda e: (-e["mtime"], e["run_id"]))
    return out


def gc_runs(
    root: str | Path,
    *,
    older_than_days: float | None = None,
    now: float | None = None,
    dry_run: bool = False,
) -> dict[str, Any]:
    """Prune a journal directory so long-lived ones stay bounded.

    Two passes:

    * **age-based** (only with ``older_than_days``): delete every run —
      journal file or fleet directory — whose newest mtime is older
      than the cutoff;
    * **stale-artifact cleanup** (always): expired lease files of every
      surviving fleet run, ``stolen/`` steal remnants, orphaned
      ``*.tmp`` files from interrupted atomic writes, and
      ``flightrec/<run-id>/`` flight-recorder dump directories whose
      run was removed above or no longer exists at all.

    Returns a summary dict; with ``dry_run`` nothing is deleted and
    ``removed`` lists what would have been.
    """
    import shutil
    import time as _time

    root = Path(root)
    now = _time.time() if now is None else now
    cutoff = (
        now - older_than_days * 86400.0
        if older_than_days is not None else None
    )
    removed: list[dict[str, Any]] = []
    leases_evicted = 0
    remnants = 0
    tmps = 0
    for entry in list_runs(root):
        path = Path(entry["path"])
        if cutoff is not None and entry["mtime"] < cutoff:
            removed.append(
                {"run_id": entry["run_id"], "kind": entry["kind"]}
            )
            if not dry_run:
                if entry["kind"] == "fleet":
                    shutil.rmtree(path, ignore_errors=True)
                else:
                    try:
                        path.unlink()
                    except OSError:
                        pass
            continue
        if entry["kind"] == "fleet" and not dry_run:
            from repro.resilience.lease import LeaseDir

            lease_root = path / "leases"
            if lease_root.is_dir():
                swept = LeaseDir(lease_root).sweep_stale()
                leases_evicted += swept["evicted"]
                remnants += swept["remnants"]
            for tmp in path.rglob("*.tmp"):
                try:
                    tmp.unlink()
                    tmps += 1
                except OSError:
                    pass
    if not dry_run and root.is_dir():
        for tmp in root.glob("*.tmp"):
            try:
                tmp.unlink()
                tmps += 1
            except OSError:
                pass
    # pool flight-recorder dumps live beside the journals under
    # flightrec/<run-id>/ — sweep the directories of runs removed above
    # and of runs that no longer exist (orphaned dumps); fleet dumps
    # live inside the run directory and go with its rmtree
    flights = 0
    flight_root = root / "flightrec"
    if flight_root.is_dir():
        removed_ids = {e["run_id"] for e in removed}
        live = {
            e["run_id"] for e in list_runs(root)
        } - removed_ids
        for dump_dir in sorted(flight_root.iterdir()):
            if not dump_dir.is_dir() or dump_dir.name in live:
                continue
            flights += 1
            if not dry_run:
                shutil.rmtree(dump_dir, ignore_errors=True)
    return {
        "removed": removed,
        "kept": len(list_runs(root)) - (len(removed) if dry_run else 0),
        "stale_leases_evicted": leases_evicted,
        "steal_remnants_removed": remnants,
        "tmp_files_removed": tmps,
        "flight_dump_dirs_removed": flights,
        "dry_run": dry_run,
    }
