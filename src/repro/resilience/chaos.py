"""The ``--chaos`` spec: a one-flag grammar for scheduler fault plans.

CI and the command line describe a seeded scheduler-layer
:class:`~repro.faults.plan.FaultPlan` as a compact ``key=value`` list::

    --chaos seed=7,crash=0.4,hang=0.2,payload=0.3,max-fault-attempts=2
    --chaos interrupt-after=1
    --chaos diverge=0;2,cache=0.5
    --chaos seed=3,fleet-kill=0.5,hb-stall=0.25,max-fault-attempts=1

Keys
----

===================  ==================================================
``seed``             root of every chaos decision (default 0)
``crash``            per-attempt worker-crash probability
``hang``             per-attempt worker-hang probability
``payload``          per-attempt truncated/corrupted-result probability
``cache``            per-read torn-cache-entry probability
``max-fault-attempts``  attempts eligible for chaos per job (see
                     ``FaultPlan.sched_fault_attempts``)
``interrupt-after``  simulated SIGINT after N journaled jobs
``diverge``          ``;``-separated job ordinals that raise a fast-
                     backend divergence
``fleet-kill``       per-claim probability a fleet worker hard-exits
                     mid-lease (stolen by a surviving peer)
``hb-stall``         per-claim probability the lease owner stalls its
                     heartbeats past the TTL (duplicate completion)
``lease-corrupt``    per-claim probability the lease file is written
                     torn (peers steal immediately)
``skew``             clock-skew seconds: stealers judge leases stale
                     this much early (premature-steal path)
===================  ==================================================
"""

from __future__ import annotations

from repro.common.errors import ReproError
from repro.faults.plan import FaultPlan

__all__ = ["parse_chaos"]

_FLOAT_KEYS = {
    "crash": "worker_crash_prob",
    "hang": "worker_hang_prob",
    "payload": "payload_corrupt_prob",
    "cache": "cache_corrupt_prob",
    "fleet-kill": "fleet_kill_prob",
    "hb-stall": "heartbeat_stall_prob",
    "lease-corrupt": "lease_corrupt_prob",
    "skew": "lease_skew_s",
}
_INT_KEYS = {
    "max-fault-attempts": "sched_fault_attempts",
    "interrupt-after": "interrupt_after_jobs",
}


def parse_chaos(spec: str) -> FaultPlan:
    """Parse a ``--chaos`` spec string into a scheduler fault plan."""
    seed = 0
    kwargs: dict = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ReproError(
                f"bad chaos item {item!r}; expected key=value "
                "(e.g. crash=0.5)"
            )
        key, raw = item.split("=", 1)
        key = key.strip()
        raw = raw.strip()
        try:
            if key == "seed":
                seed = int(raw, 0)
            elif key in _FLOAT_KEYS:
                kwargs[_FLOAT_KEYS[key]] = float(raw)
            elif key in _INT_KEYS:
                kwargs[_INT_KEYS[key]] = int(raw, 0)
            elif key == "diverge":
                kwargs["divergence_jobs"] = tuple(
                    int(v, 0) for v in raw.split(";") if v
                )
            else:
                known = ["seed", *_FLOAT_KEYS, *_INT_KEYS, "diverge"]
                raise ReproError(
                    f"unknown chaos key {key!r}; known: {', '.join(known)}"
                )
        except ValueError:
            raise ReproError(
                f"bad chaos value for {key!r}: {raw!r}"
            ) from None
    return FaultPlan(seed, **kwargs)
