"""Resilient scheduling: supervision, checkpoint/resume, degradation.

The production-hardening layer over :mod:`repro.sched`: a supervised
worker pool (:mod:`~repro.resilience.supervisor`), an append-only
NDJSON run journal for checkpoint/resume
(:mod:`~repro.resilience.journal`), and the ``--chaos`` grammar that
drives deterministic scheduler-layer fault injection
(:mod:`~repro.resilience.chaos`).  See ``docs/resilience.md``.
"""

from repro.resilience.chaos import parse_chaos
from repro.resilience.journal import (
    DEFAULT_JOURNAL_DIR,
    JOURNAL_SCHEMA,
    RunJournal,
    job_fingerprint,
    new_run_id,
)
from repro.resilience.supervisor import (
    HANG_SLEEP_S,
    JobTimeout,
    PayloadCorruption,
    QuarantineError,
    ResilienceConfig,
    SchedTelemetry,
    WorkerCrash,
    run_supervised,
    wall_clock_limit,
)

__all__ = [
    "DEFAULT_JOURNAL_DIR",
    "JOURNAL_SCHEMA",
    "HANG_SLEEP_S",
    "JobTimeout",
    "PayloadCorruption",
    "QuarantineError",
    "ResilienceConfig",
    "RunJournal",
    "SchedTelemetry",
    "WorkerCrash",
    "job_fingerprint",
    "new_run_id",
    "parse_chaos",
    "run_supervised",
    "wall_clock_limit",
]
