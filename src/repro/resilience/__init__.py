"""Resilient scheduling: supervision, checkpoint/resume, fleet, chaos.

The production-hardening layer over :mod:`repro.sched`: a supervised
worker pool (:mod:`~repro.resilience.supervisor`), an append-only
NDJSON run journal for checkpoint/resume
(:mod:`~repro.resilience.journal`), a journal-backed work-stealing
fleet for distributed sweeps (:mod:`~repro.resilience.fleet` over the
atomic leases of :mod:`~repro.resilience.lease`), and the ``--chaos``
grammar that drives deterministic scheduler- and fleet-layer fault
injection (:mod:`~repro.resilience.chaos`).  See ``docs/resilience.md``
and ``docs/fleet.md``.
"""

from repro.resilience.chaos import parse_chaos
from repro.resilience.fleet import (
    FLEET_SCHEMA,
    FleetConfig,
    FleetMergeError,
    ensure_manifest,
    fleet_dir,
    fleet_worker,
    join_fleet,
    merge_fleet,
    run_fleet,
)
from repro.resilience.journal import (
    DEFAULT_JOURNAL_DIR,
    JOURNAL_SCHEMA,
    RunJournal,
    gc_runs,
    job_fingerprint,
    list_runs,
    new_run_id,
)
from repro.resilience.lease import LEASE_SCHEMA, Lease, LeaseDir
from repro.resilience.supervisor import (
    HANG_SLEEP_S,
    JobTimeout,
    PayloadCorruption,
    QuarantineError,
    ResilienceConfig,
    SchedTelemetry,
    WorkerCrash,
    run_supervised,
    wall_clock_limit,
)

__all__ = [
    "DEFAULT_JOURNAL_DIR",
    "FLEET_SCHEMA",
    "JOURNAL_SCHEMA",
    "LEASE_SCHEMA",
    "HANG_SLEEP_S",
    "FleetConfig",
    "FleetMergeError",
    "JobTimeout",
    "Lease",
    "LeaseDir",
    "PayloadCorruption",
    "QuarantineError",
    "ResilienceConfig",
    "RunJournal",
    "SchedTelemetry",
    "WorkerCrash",
    "ensure_manifest",
    "fleet_dir",
    "fleet_worker",
    "gc_runs",
    "job_fingerprint",
    "join_fleet",
    "list_runs",
    "merge_fleet",
    "new_run_id",
    "parse_chaos",
    "run_fleet",
    "run_supervised",
    "wall_clock_limit",
]
