"""Atomic job leases for the distributed sweep fleet.

A fleet worker claims a job by *creating* its lease file with
``O_CREAT | O_EXCL`` — the one filesystem operation that is atomic on
every POSIX filesystem, including the shared network directories a
multi-machine fleet coordinates through.  The file body is a small
JSON document naming the owner, the lease *epoch* (how many times the
job has been claimed), and two wall-clock timestamps::

    {"schema": "repro-lease/1", "job": "<fingerprint>", "owner": "w1",
     "epoch": 0, "acquired_at": 1723180000.0, "heartbeat_at": 1723180003.2}

While the owner works, a heartbeat rewrites the file atomically (temp
file + ``os.replace``, fsync'd) with a fresh ``heartbeat_at``.  A peer
that finds a lease whose heartbeat is older than the TTL — the owner
was SIGKILL'd, wedged, or unplugged — *steals* it: it renames the
stale file into ``stolen/`` (rename is atomic, so exactly one stealer
wins) and then re-acquires through the same ``O_EXCL`` create with the
epoch bumped.  An unreadable or torn lease file (a crash mid-write, a
chaos-injected corruption) is treated as immediately steal-eligible:
the remnant is quarantined into ``stolen/`` and the job re-claimed.

None of this is load-bearing for *correctness* — job execution is
deterministic and the fleet merge is first-write-wins with checksum
cross-validation, so a premature steal (clock skew, an aggressive TTL)
only costs a duplicate computation.  Leases exist to make the common
case cheap: at most one worker per job, crash recovery bounded by one
TTL.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.common.errors import ReproError

__all__ = [
    "LEASE_SCHEMA",
    "Lease",
    "LeaseDir",
    "LeaseUnavailable",
]

LEASE_SCHEMA = "repro-lease/1"


class LeaseUnavailable(ReproError):
    """The lease directory itself cannot be used (permissions, etc.)."""


@dataclass
class Lease:
    """One held claim on a job; returned by :meth:`LeaseDir.acquire`."""

    job: str
    owner: str
    epoch: int
    acquired_at: float
    heartbeat_at: float
    stolen_from: str | None = None   #: previous owner when epoch > 0

    def as_dict(self) -> dict:
        return {
            "schema": LEASE_SCHEMA,
            "job": self.job,
            "owner": self.owner,
            "epoch": self.epoch,
            "acquired_at": self.acquired_at,
            "heartbeat_at": self.heartbeat_at,
        }


class LeaseDir:
    """The lease directory of one fleet run.

    ``ttl_s`` is the staleness bound: a lease whose last heartbeat is
    older than the TTL may be stolen.  ``skew_s`` models a stealer
    whose clock runs ahead — staleness is judged ``skew_s`` seconds
    early (the chaos plan's ``skew`` key routes here).  ``now`` is
    injectable for tests.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        ttl_s: float = 5.0,
        skew_s: float = 0.0,
        now: Callable[[], float] = time.time,
    ) -> None:
        self.root = Path(root)
        self.ttl_s = float(ttl_s)
        self.skew_s = float(skew_s)
        self.now = now
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            (self.root / "stolen").mkdir(exist_ok=True)
        except OSError as exc:
            raise LeaseUnavailable(
                f"lease directory {self.root} is not writable: {exc}"
            ) from None

    # ------------------------------------------------------------------
    def path(self, job: str) -> Path:
        return self.root / f"{job}.lease"

    def _write_body(self, fd: int, lease: Lease, *, torn: bool = False) -> None:
        body = json.dumps(lease.as_dict(), separators=(",", ":")).encode()
        if torn:
            # chaos: a crash mid-write leaves half a lease on disk
            body = body[: max(1, len(body) // 2)]
        os.write(fd, body)
        os.fsync(fd)

    # ------------------------------------------------------------------
    def acquire(
        self, job: str, owner: str, *, epoch: int = 0,
        stolen_from: str | None = None, torn: bool = False,
    ) -> Lease | None:
        """Claim ``job`` for ``owner``; None when held by a live peer.

        The create is ``O_EXCL``, so between two racing workers exactly
        one returns a :class:`Lease` and the other None.
        """
        t = self.now()
        lease = Lease(
            job=job, owner=owner, epoch=epoch,
            acquired_at=t, heartbeat_at=t, stolen_from=stolen_from,
        )
        try:
            fd = os.open(
                self.path(job), os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
            )
        except FileExistsError:
            return None
        except OSError as exc:
            raise LeaseUnavailable(
                f"cannot create lease for job {job[:12]}: {exc}"
            ) from None
        try:
            self._write_body(fd, lease, torn=torn)
        finally:
            os.close(fd)
        return lease

    def read(self, job: str) -> Lease | None:
        """The current lease of ``job``; None if absent or unreadable.

        A *torn* lease (present but unparsable) raises ``ValueError``
        so callers can distinguish "free" from "corrupt" — corrupt
        leases are steal-eligible immediately.
        """
        try:
            text = self.path(job).read_text()
        except OSError:
            return None
        obj = json.loads(text)   # ValueError/JSONDecodeError → corrupt
        if obj.get("schema") != LEASE_SCHEMA:
            raise ValueError(f"lease has schema {obj.get('schema')!r}")
        return Lease(
            job=obj["job"], owner=obj["owner"], epoch=int(obj["epoch"]),
            acquired_at=float(obj["acquired_at"]),
            heartbeat_at=float(obj["heartbeat_at"]),
        )

    def is_stale(self, lease: Lease) -> bool:
        """Has the owner missed enough heartbeats to lose the lease?"""
        return (self.now() + self.skew_s) - lease.heartbeat_at > self.ttl_s

    # ------------------------------------------------------------------
    def claim(self, job: str, owner: str) -> Lease | None:
        """Acquire ``job``, stealing a stale or corrupt lease if needed.

        Returns None when the job is validly held by a live peer.  The
        steal path renames the old lease into ``stolen/`` first —
        rename is atomic, so two stealers racing on the same stale
        lease resolve to exactly one winner (the loser sees
        ``FileNotFoundError`` and reports the job as held).
        """
        got = self.acquire(job, owner)
        if got is not None:
            return got
        try:
            current = self.read(job)
        except ValueError:
            current = None       # torn on disk: steal-eligible now
            corrupt = True
        else:
            corrupt = False
            if current is None:
                # released between our create attempt and the read —
                # retry the plain acquire once
                return self.acquire(job, owner)
            if not self.is_stale(current):
                return None
        if not self._evict(job):
            return None          # another stealer won the rename race
        epoch = (current.epoch + 1) if current is not None else 1
        prev = current.owner if current is not None else (
            "<corrupt>" if corrupt else None
        )
        return self.acquire(job, owner, epoch=epoch, stolen_from=prev)

    def _evict(self, job: str) -> bool:
        """Move a stale/corrupt lease into ``stolen/``; True if we won."""
        dest = self.root / "stolen" / f"{job}.{uuid.uuid4().hex[:8]}.lease"
        try:
            os.rename(self.path(job), dest)
        except FileNotFoundError:
            return False
        except OSError as exc:  # pragma: no cover - cross-device etc.
            raise LeaseUnavailable(
                f"cannot evict stale lease for job {job[:12]}: {exc}"
            ) from None
        return True

    # ------------------------------------------------------------------
    def heartbeat(self, lease: Lease) -> bool:
        """Refresh the lease's heartbeat; False when the lease was lost.

        The rewrite is atomic (temp + ``os.replace``); before writing,
        the current owner is checked so a stalled worker whose lease
        was stolen does not clobber the thief's claim.  The check-then-
        replace window is unavoidable without fcntl locks (which NFS
        breaks) — a loss in that window costs one duplicate
        completion, which the merge tolerates by design.
        """
        try:
            current = self.read(lease.job)
        except ValueError:
            return False
        if current is None or current.owner != lease.owner \
                or current.epoch != lease.epoch:
            return False
        lease.heartbeat_at = self.now()
        tmp = self.path(lease.job).with_suffix(
            f".hb.{uuid.uuid4().hex[:8]}.tmp"
        )
        try:
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            try:
                self._write_body(fd, lease)
            finally:
                os.close(fd)
            os.replace(tmp, self.path(lease.job))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    def release(self, lease: Lease) -> bool:
        """Drop the lease after the job is journaled; False if lost."""
        try:
            current = self.read(lease.job)
        except ValueError:
            return False
        if current is None or current.owner != lease.owner \
                or current.epoch != lease.epoch:
            return False
        try:
            os.unlink(self.path(lease.job))
        except OSError:
            return False
        return True

    # ------------------------------------------------------------------
    def sweep_stale(self) -> dict[str, int]:
        """GC helper: drop expired leases and steal remnants.

        Returns counters for ``repro journal gc``: leases evicted (the
        owner is gone past TTL with nobody left to steal) and
        ``stolen/`` remnants removed.
        """
        evicted = 0
        for path in sorted(self.root.glob("*.lease")):
            job = path.name[: -len(".lease")]
            try:
                lease = self.read(job)
            except ValueError:
                lease = None
            if lease is None or self.is_stale(lease):
                if self._evict(job):
                    evicted += 1
        remnants = 0
        for path in sorted((self.root / "stolen").glob("*.lease")):
            try:
                path.unlink()
                remnants += 1
            except OSError:
                pass
        for path in sorted(self.root.glob("*.tmp")):
            try:
                path.unlink()
            except OSError:
                pass
        return {"evicted": evicted, "remnants": remnants}
