"""Journal-backed work-stealing fleet for distributed sweeps.

``run_fleet`` turns one sweep into a crash-tolerant cooperation of
independent worker *processes* — on one machine (``--fleet N``) or on
several machines sharing a directory (``--join <run-id>`` per worker).
Nothing coordinates the workers except the filesystem:

* the **manifest** (``manifest.json``) pins the run's job list — one
  :func:`~repro.resilience.journal.job_fingerprint` per
  :class:`~repro.sched.runner.JobSpec`, in spec order.  The first
  worker to arrive creates it atomically (hard-link publish); everyone
  else validates their own job list against it, so two operators who
  typed different sweeps into the same run id fail loudly instead of
  merging garbage;
* each job is claimed through an atomic **lease**
  (:mod:`~repro.resilience.lease`): ``O_EXCL`` create, fsync'd
  heartbeats, rename-based stealing once a lease outlives its TTL;
* each worker appends completed payloads to its **own**
  ``repro-journal/1`` NDJSON journal under ``journals/`` — append-only,
  fsync'd per record, torn-tail tolerant, never contended;
* health events (lease acquires, steals, heartbeats, stalls, kills,
  completions) stream to per-worker NDJSON **event logs** under
  ``events/``, which the merging process folds into telemetry and
  re-emits as ``sched`` activity records.

The **merge** is deterministic and idempotent: payloads are collected
per fingerprint across all worker journals in sorted worker order,
first write wins, and every duplicate (a stalled worker finishing a
stolen job) is cross-validated by SHA-256 checksum against the winner
— and against any :class:`~repro.sched.cache.ResultCache` entry — so
the final payload list is byte-identical to a serial run regardless of
worker count, death order, or duplicate completions.  A disagreement
is a hard error, never a silent pick.

Fault tolerance is layered: a worker that dies mid-lease is stolen
from after one TTL; a worker that stalls heartbeats is stolen from and
its late completion lands as a (validated) duplicate; if *every*
worker dies, the coordinating process finishes the remaining jobs
in-process (``fleet-fallback``, exit code 3) — the same degradation
ladder the supervised pool uses.  Chaos decisions
(:meth:`~repro.faults.plan.FaultPlan.fleet_outcome`) are keyed on
``(job ordinal, lease epoch)``, so injected kill/stall schedules are
reproducible across any worker count.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from repro.common.errors import BackendDivergenceError, ReproError
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.resilience.journal import (
    DEFAULT_JOURNAL_DIR,
    RunJournal,
    job_fingerprint,
    new_run_id,
)
from repro.resilience.lease import LeaseDir
from repro.resilience.supervisor import (
    JobTimeout,
    PayloadCorruption,
    QuarantineError,
    SchedTelemetry,
    WorkerCrash,
    _MAX_REAL_BACKOFF_S,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.prof.activity import ActivityHub
    from repro.sched.cache import ResultCache
    from repro.sched.runner import JobSpec

__all__ = [
    "FLEET_SCHEMA",
    "FleetConfig",
    "FleetMergeError",
    "fleet_dir",
    "ensure_manifest",
    "fleet_worker",
    "run_fleet",
    "join_fleet",
    "merge_fleet",
]

FLEET_SCHEMA = "repro-fleet/1"


class FleetMergeError(ReproError):
    """Worker journals (or the cache) disagree about a job's payload."""


@dataclass
class FleetConfig:
    """Shape and policy of one fleet run.

    ``workers`` is the local process count for :func:`run_fleet`;
    :func:`join_fleet` ignores it (one invocation is one worker).
    ``lethal`` gates the chaos faults that really terminate the worker
    process — the coordinator's in-process fallback runs with it off
    so an injected kill cannot take down the merge.
    """

    run_id: str = field(default_factory=new_run_id)
    worker_id: str = ""
    workers: int = 2
    journal_root: str | Path = DEFAULT_JOURNAL_DIR
    command: str = "fleet"
    heartbeat_s: float = 0.5
    lease_ttl_s: float = 5.0
    poll_s: float = 0.05
    join_timeout_s: float = 120.0
    max_retries: int = 2
    retry_policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(jitter_frac=0.25)
    )
    chaos: FaultPlan | None = None
    lethal: bool = True
    hub: "ActivityHub | None" = field(default=None, repr=False, compare=False)
    telemetry: SchedTelemetry = field(default_factory=SchedTelemetry)

    def __post_init__(self) -> None:
        if not self.worker_id:
            self.worker_id = f"w-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        if self.lease_ttl_s <= 0:
            raise ReproError(
                f"lease TTL must be positive, got {self.lease_ttl_s}"
            )
        if self.heartbeat_s <= 0 or self.heartbeat_s >= self.lease_ttl_s:
            raise ReproError(
                f"heartbeat interval must be in (0, lease TTL); got "
                f"{self.heartbeat_s} vs TTL {self.lease_ttl_s}"
            )


def fleet_dir(root: str | Path, run_id: str) -> Path:
    """The shared coordination directory of one fleet run."""
    return Path(root) / f"{run_id}.fleet"


# ----------------------------------------------------------------------
# manifest

def _spec_as_dict(spec: "JobSpec") -> dict[str, Any]:
    return {
        "benchmark": spec.benchmark,
        "kind": spec.kind,
        "params": spec.params,
        "values": list(spec.values) if spec.values is not None else None,
        "system": spec.system,
        "backend": spec.backend,
    }


def ensure_manifest(
    run_dir: Path,
    specs: Sequence["JobSpec"],
    *,
    run_id: str,
    command: str,
) -> dict[str, Any]:
    """Create (first arrival) or validate (everyone else) the manifest.

    Publication is atomic: the document is written to a temp file,
    fsync'd, then hard-linked to ``manifest.json`` — link fails with
    ``EEXIST`` for every worker but one, and no reader ever observes a
    partial manifest.  A joining worker whose own spec list hashes
    differently fails loudly: half a fleet computing a different sweep
    must not share journals with this one.
    """
    fingerprints = [job_fingerprint(s) for s in specs]
    path = run_dir / "manifest.json"
    doc = {
        "schema": FLEET_SCHEMA,
        "run_id": run_id,
        "command": command,
        "jobs": fingerprints,
        "specs": [_spec_as_dict(s) for s in specs],
    }
    for sub in ("journals", "leases", "events", "quarantine"):
        (run_dir / sub).mkdir(parents=True, exist_ok=True)
    if not path.exists():
        tmp = run_dir / f"manifest.{uuid.uuid4().hex[:8]}.tmp"
        try:
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            try:
                os.write(fd, json.dumps(doc, indent=1).encode())
                os.fsync(fd)
            finally:
                os.close(fd)
            try:
                os.link(tmp, path)
            except FileExistsError:
                pass     # a peer published first; validate below
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
    try:
        published = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(
            f"fleet manifest {path} is unreadable: {exc}"
        ) from None
    if published.get("schema") != FLEET_SCHEMA:
        raise ReproError(
            f"fleet manifest {path} has schema "
            f"{published.get('schema')!r}, expected {FLEET_SCHEMA}"
        )
    if published.get("jobs") != fingerprints:
        raise ReproError(
            f"fleet run {run_id!r} was created for a different job list "
            f"({len(published.get('jobs', []))} job(s) vs {len(fingerprints)} "
            "here); joining workers must be invoked with the same sweep "
            "arguments, or pick a fresh --run-id"
        )
    return published


# ----------------------------------------------------------------------
# shared-state scans

def _scan_completed(run_dir: Path) -> dict[str, tuple[str, Any]]:
    """fingerprint -> (worker journal name, payload), first write wins.

    Worker journals are visited in sorted filename order and each file
    in append order, so the winner for a duplicated fingerprint is the
    same for every scanning process.
    """
    out: dict[str, tuple[str, Any]] = {}
    jdir = run_dir / "journals"
    for path in sorted(jdir.glob("*.ndjson")):
        _, completed = RunJournal._load(path)
        for fp, payload in completed.items():
            out.setdefault(fp, (path.stem, payload))
    return out


def _scan_duplicates(run_dir: Path) -> dict[str, list[tuple[str, Any]]]:
    """fingerprint -> every (worker, payload) recorded, in merge order."""
    out: dict[str, list[tuple[str, Any]]] = {}
    for path in sorted((run_dir / "journals").glob("*.ndjson")):
        _, completed = RunJournal._load(path)
        for fp, payload in completed.items():
            out.setdefault(fp, []).append((path.stem, payload))
    return out


def _scan_quarantined(run_dir: Path) -> dict[str, dict[str, Any]]:
    out: dict[str, dict[str, Any]] = {}
    for path in sorted((run_dir / "quarantine").glob("*.json")):
        try:
            out[path.stem] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            out[path.stem] = {"error": "unreadable quarantine marker"}
    return out


def _resolved(run_dir: Path) -> set[str]:
    """Fingerprints nobody should claim anymore: completed or poisoned."""
    done = set(_scan_completed(run_dir))
    done.update(_scan_quarantined(run_dir))
    return done


# ----------------------------------------------------------------------
# worker-side event log

class _EventLog:
    """Append-only NDJSON health-event stream of one worker."""

    def __init__(self, path: Path, worker_id: str) -> None:
        self.worker_id = worker_id
        self._fh = path.open("a")

    def emit(self, event: str, **args: Any) -> None:
        # "t" (wall clock) feeds the read-only monitor's last-seen /
        # ETA columns; it never enters merged payloads or traces
        rec = {
            "event": event, "worker": self.worker_id,
            "t": time.time(), **args,
        }
        self._fh.write(json.dumps(rec, separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


def _read_events(run_dir: Path) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = []
    for path in sorted((run_dir / "events").glob("*.ndjson")):
        try:
            lines = path.read_text().splitlines()
        except OSError:
            continue
        for line in lines:
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue       # torn tail of a killed worker
    return events


# ----------------------------------------------------------------------
# the worker loop

class _Heartbeat:
    """Background heartbeats for one held lease."""

    def __init__(self, leases: LeaseDir, lease, interval_s: float,
                 events: _EventLog, ordinal: int) -> None:
        self._leases = leases
        self._lease = lease
        self._interval = interval_s
        self._events = events
        self._ordinal = ordinal
        self._stop = threading.Event()
        self.count = 0
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if not self._leases.heartbeat(self._lease):
                self.lost = True
                self._events.emit(
                    "lease-lost", job=self._ordinal, owner=self._lease.owner
                )
                return
            self.count += 1
            self._events.emit(
                "heartbeat", job=self._ordinal, owner=self._lease.owner,
                epoch=self._lease.epoch,
            )

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5)


def _quarantine_job(run_dir: Path, fp: str, info: dict[str, Any]) -> None:
    """Publish a poisoned-job marker (atomic, first writer wins)."""
    tmp = run_dir / "quarantine" / f".{fp}.{uuid.uuid4().hex[:8]}.tmp"
    path = run_dir / "quarantine" / f"{fp}.json"
    try:
        tmp.write_text(json.dumps(info, separators=(",", ":")))
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _execute_with_retries(
    spec: "JobSpec", ordinal: int, cfg: FleetConfig, events: _EventLog,
    sink=None,
) -> dict[str, Any] | None:
    """One claimed job through the retry ladder; None when poisoned.

    Chaos crash/hang/payload decisions reuse the scheduler-layer keys
    ``(ordinal, attempt)``, so a fleet run injects exactly the faults a
    supervised-pool run of the same plan would — which is what keeps
    the byte-identity property assertable across execution modes.

    ``sink`` is the worker's :class:`~repro.obs.stitch.ActivitySink`:
    each attempt restarts its buffer, so only the successful attempt's
    activity is ever published (the caller commits after journaling).
    """
    from repro.sched.runner import execute_job

    chaos = cfg.chaos
    job_spec = spec
    attempts = 0
    fell_back = False
    while True:
        if sink is not None:
            sink.begin(ordinal)
        try:
            if chaos is not None:
                if (
                    job_spec.backend == "fast"
                    and not fell_back
                    and chaos.job_diverges(ordinal)
                ):
                    raise BackendDivergenceError(
                        f"injected fast-backend divergence ({spec.benchmark})"
                    )
                outcome = chaos.worker_outcome(ordinal, attempts)
                if outcome == "crash":
                    raise WorkerCrash(
                        f"injected worker crash (job {ordinal})"
                    )
                if outcome == "hang":
                    raise JobTimeout(
                        f"injected worker hang (job {ordinal})"
                    )
            payload = execute_job(job_spec)
            if chaos is not None:
                kind = chaos.payload_outcome(ordinal, attempts)
                if kind != "ok":
                    raise PayloadCorruption(
                        f"{kind}d result payload (job {ordinal}, "
                        f"attempt {attempts})"
                    )
            return payload
        except ReproError as exc:
            if (
                isinstance(exc, BackendDivergenceError)
                and job_spec.backend == "fast"
                and not fell_back
            ):
                fell_back = True
                job_spec = replace(job_spec, backend="reference")
                events.emit(
                    "fallback-reference", job=ordinal, reason=str(exc)
                )
                continue
            attempts += 1
            events.emit(
                "job-error", job=ordinal, attempt=attempts, error=str(exc)
            )
            if attempts > cfg.max_retries:
                return None
            u = (
                chaos.retry_jitter(ordinal, attempts - 1)
                if chaos is not None else 0.0
            )
            delay = cfg.retry_policy.backoff(attempts - 1, u)
            events.emit(
                "retry", job=ordinal, attempt=attempts, backoff_s=delay
            )
            time.sleep(min(delay, _MAX_REAL_BACKOFF_S))


def fleet_worker(specs: Sequence["JobSpec"], cfg: FleetConfig) -> int:
    """Run one worker until every manifest job is resolved.

    Claims jobs lease-by-lease in ordinal order, executes them with the
    retry ladder, journals completions to this worker's own NDJSON
    file, and steals from dead or stalled peers.  Returns the number
    of jobs this worker completed.
    """
    from repro.obs.flight import FlightRecorder
    from repro.obs.stitch import ActivitySink
    from repro.obs.trace import TraceContext
    from repro.prof.activity import ActivityHub
    from repro.sanitize.session import sanitize_session

    chaos = cfg.chaos
    run_dir = fleet_dir(cfg.journal_root, cfg.run_id)
    manifest = ensure_manifest(
        run_dir, specs, run_id=cfg.run_id, command=cfg.command
    )
    fingerprints: list[str] = manifest["jobs"]
    spec_by_fp = dict(zip(fingerprints, specs))
    leases = LeaseDir(
        run_dir / "leases",
        ttl_s=cfg.lease_ttl_s,
        skew_s=chaos.lease_skew_s if chaos is not None else 0.0,
    )
    journal = RunJournal.attach(
        run_dir / "journals", run_id=cfg.worker_id,
        meta={"command": cfg.command, "fleet_run": cfg.run_id},
    )
    events = _EventLog(
        run_dir / "events" / f"{cfg.worker_id}.ndjson", cfg.worker_id
    )
    # observability plane: a worker-local hub captures the benchmark's
    # own activity (kernels, copies, launches) through the ambient
    # session, publishes successful jobs' records for trace stitching,
    # and keeps a flight-recorder ring for crash post-mortems
    hub = ActivityHub()
    root_ctx = TraceContext.root(cfg.run_id)
    hub.trace = root_ctx
    sink = ActivitySink(
        run_dir / "activity" / f"{cfg.worker_id}.ndjson",
        worker=cfg.worker_id,
    )
    hub.subscribe(sink)
    recorder = FlightRecorder(worker=cfg.worker_id, run_id=cfg.run_id)
    hub.subscribe(recorder)

    def flight_dump(reason: str) -> None:
        if len(recorder):
            try:
                recorder.dump(run_dir / "flightrec", reason=reason)
            except OSError:  # pragma: no cover - best-effort on the way down
                pass

    completed_here = 0
    try:
        while True:
            done = _resolved(run_dir)
            if all(fp in done for fp in fingerprints):
                break
            progress = False
            for ordinal, fp in enumerate(fingerprints):
                if fp in done or fp in journal.completed:
                    continue
                lease = leases.claim(fp, cfg.worker_id)
                if lease is None:
                    continue
                progress = True
                events.emit(
                    "lease-steal" if lease.epoch else "lease-acquire",
                    job=ordinal, owner=cfg.worker_id, epoch=lease.epoch,
                    stolen_from=lease.stolen_from,
                )
                action = (
                    chaos.fleet_outcome(ordinal, lease.epoch)
                    if chaos is not None else "ok"
                )
                corrupt = (
                    chaos is not None
                    and chaos.lease_write_corrupts(ordinal, lease.epoch)
                )
                if action == "kill" and cfg.lethal:
                    events.emit(
                        "chaos-kill", job=ordinal, epoch=lease.epoch
                    )
                    flight_dump(f"chaos-kill-{ordinal}")
                    os._exit(9)
                if corrupt:
                    # tear our own lease on disk: peers now read garbage
                    # and may steal immediately; skip heartbeats so the
                    # corruption stays observable
                    events.emit("lease-corrupt", job=ordinal)
                    path = leases.path(fp)
                    try:
                        data = path.read_bytes()
                        path.write_bytes(data[: max(1, len(data) // 2)])
                    except OSError:
                        pass
                job_ctx = root_ctx.job(ordinal)
                if action == "stall" and cfg.lethal:
                    # miss every heartbeat and outlive the TTL: a peer
                    # steals the lease mid-run and our completion below
                    # lands as a validated duplicate
                    events.emit(
                        "heartbeat-stall", job=ordinal, epoch=lease.epoch
                    )
                    time.sleep(cfg.lease_ttl_s + 2 * cfg.heartbeat_s)
                    with hub.span(job_ctx), sanitize_session(hub=hub):
                        payload = _execute_with_retries(
                            spec_by_fp[fp], ordinal, cfg, events, sink
                        )
                else:
                    with _Heartbeat(
                        leases, lease, cfg.heartbeat_s, events, ordinal
                    ) as hb:
                        if corrupt:
                            hb._stop.set()
                        with hub.span(job_ctx), sanitize_session(hub=hub):
                            payload = _execute_with_retries(
                                spec_by_fp[fp], ordinal, cfg, events, sink
                            )
                if payload is None:
                    sink.abort()
                    _quarantine_job(run_dir, fp, {
                        "benchmark": spec_by_fp[fp].benchmark,
                        "job": ordinal,
                        "worker": cfg.worker_id,
                        "attempts": cfg.max_retries + 1,
                    })
                    events.emit("quarantine", job=ordinal)
                    flight_dump(f"quarantine-{ordinal}")
                    leases.release(lease)
                    continue
                journal.record(fp, payload, meta={
                    "benchmark": spec_by_fp[fp].benchmark,
                    "worker": cfg.worker_id,
                    "job": ordinal,
                    "epoch": lease.epoch,
                    **job_ctx.as_dict(),
                })
                sink.commit()
                completed_here += 1
                released = leases.release(lease)
                events.emit(
                    "job-complete", job=ordinal, epoch=lease.epoch,
                    duplicate=not released,
                )
            if not progress:
                time.sleep(cfg.poll_s)
        events.emit("worker-exit", completed=completed_here)
    except ReproError:
        # exiting nonzero (entry point maps this to exit 21): preserve
        # the last activity for the post-mortem before unwinding
        flight_dump("fatal")
        raise
    finally:
        journal.close()
        events.close()
        sink.close()
    return completed_here


def _fleet_worker_entry(specs, cfg: FleetConfig) -> None:
    """Child-process entry point for locally spawned fleet workers."""
    if hasattr(signal, "SIGTERM"):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    if hasattr(signal, "SIGINT"):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        fleet_worker(specs, cfg)
    except ReproError:
        os._exit(21)
    os._exit(0)


# ----------------------------------------------------------------------
# merge

def _emit(hub, name: str, **args: Any) -> None:
    if hub is not None and hub.wants("sched"):
        hub.emit("sched", name, track="fleet", **args)


def merge_fleet(
    run_dir: Path,
    specs: Sequence["JobSpec"],
    *,
    cfg: FleetConfig,
    cache: "ResultCache | None" = None,
) -> list[dict[str, Any]]:
    """Deterministic first-write-wins merge of all worker journals.

    Every duplicated completion is checksum-compared against the
    winner, and every payload against any existing result-cache entry;
    a mismatch raises :class:`FleetMergeError` (deterministic jobs
    cannot legitimately disagree, so a conflict means corruption or a
    code-version split across the fleet).  Folds worker health events
    into the run's telemetry and re-emits them as ``sched`` records.
    """
    from repro.sched.cache import _payload_checksum
    from repro.sched.runner import _cache_key

    tele = cfg.telemetry
    hub = cfg.hub
    quarantined = _scan_quarantined(run_dir)
    if quarantined:
        for fp, info in quarantined.items():
            tele.quarantined.append({**info, "fingerprint": fp[:12]})
        names = ", ".join(
            f"{q.get('benchmark', '?')}#{q.get('job', '?')}"
            for q in quarantined.values()
        )
        raise QuarantineError(
            f"{len(quarantined)} fleet job(s) quarantined after retry "
            f"exhaustion: {names}; journals kept under {run_dir}"
        )
    all_records = _scan_duplicates(run_dir)
    fingerprints = [job_fingerprint(s) for s in specs]
    missing = [fp for fp in fingerprints if fp not in all_records]
    if missing:
        raise ReproError(
            f"fleet run under {run_dir} is incomplete: "
            f"{len(missing)}/{len(fingerprints)} job(s) never journaled"
        )
    payloads: list[dict[str, Any]] = []
    winners: list[tuple[int, str]] = []
    for ordinal, (fp, spec) in enumerate(zip(fingerprints, specs)):
        records = all_records[fp]
        winner_worker, winner = records[0]
        winners.append((ordinal, winner_worker))
        checksum = _payload_checksum(winner)
        for other_worker, other in records[1:]:
            tele.duplicate_completions += 1
            _emit(
                hub, "duplicate-completion", job=ordinal,
                winner=winner_worker, duplicate=other_worker,
            )
            if _payload_checksum(other) != checksum:
                raise FleetMergeError(
                    f"fleet journals disagree on job {ordinal} "
                    f"({spec.benchmark}): worker {winner_worker!r} vs "
                    f"{other_worker!r}; refusing to merge"
                )
        if cache is not None:
            key = _cache_key(cache, spec)
            existing = cache.get(key)
            if existing is None:
                cache.put(key, winner)
            elif _payload_checksum(existing) != checksum:
                raise FleetMergeError(
                    f"fleet payload for job {ordinal} ({spec.benchmark}) "
                    "disagrees with the result cache; refusing to merge"
                )
        payloads.append(winner)
    if hub is not None and hub.subscriber_count:
        # thread each winning worker's published activity records into
        # the caller's hub — device timelines and span identities
        # survive the merge instead of collapsing into fleet-* summaries
        from repro.obs.stitch import read_worker_activity
        from repro.prof.ndjson import record_from_json

        by_worker_job: dict[tuple[str, int], list[dict[str, Any]]] = {}
        for worker, lines in read_worker_activity(run_dir).items():
            for obj in lines:
                try:
                    j = int(obj.get("job"))
                except (TypeError, ValueError):
                    continue
                by_worker_job.setdefault((worker, j), []).append(obj)
        for ordinal, worker in winners:
            for obj in by_worker_job.get((worker, ordinal), []):
                rec = record_from_json(obj)
                if not hub.wants(rec.kind):
                    continue
                track = f"{worker}:{rec.track}" if rec.track else worker
                hub.dispatch(replace(
                    rec, track=track,
                    args={
                        **rec.args,
                        "fleet_worker": worker,
                        "fleet_job": ordinal,
                    },
                ))
    for ev in _read_events(run_dir):
        name = ev.pop("event", "event")
        if name == "lease-acquire":
            tele.leases_acquired += 1
        elif name == "lease-steal":
            tele.leases_stolen += 1
        elif name == "heartbeat":
            tele.heartbeats += 1
        _emit(hub, f"fleet-{name}", **ev)
    tele.completed = len(payloads)
    # the run is merged: expired leases and steal remnants are garbage
    LeaseDir(run_dir / "leases", ttl_s=cfg.lease_ttl_s).sweep_stale()
    _emit(
        hub, "fleet-merge", jobs=len(payloads),
        duplicates=tele.duplicate_completions,
        steals=tele.leases_stolen,
    )
    return payloads


# ----------------------------------------------------------------------
# entry points

def run_fleet(
    specs: Sequence["JobSpec"],
    cfg: FleetConfig,
    *,
    cache: "ResultCache | None" = None,
) -> list[dict[str, Any]]:
    """Coordinate ``cfg.workers`` local worker processes, then merge.

    The coordinator owns no jobs itself; it publishes the manifest,
    spawns the workers, and watches the shared directory.  If every
    worker dies with work outstanding (chaos, OOM killer, operator
    ``kill -9``), it finishes the remainder in-process with lethal
    chaos disarmed — the fleet analog of the pool's serial fallback —
    and the merge still produces the byte-identical result.
    """
    import multiprocessing

    tele = cfg.telemetry
    tele.mode = "fleet"
    tele.fleet_workers = max(1, cfg.workers)
    tele.journal_run_id = cfg.run_id
    run_dir = fleet_dir(cfg.journal_root, cfg.run_id)
    ensure_manifest(run_dir, specs, run_id=cfg.run_id, command=cfg.command)
    fingerprints = [job_fingerprint(s) for s in specs]

    ctx = multiprocessing.get_context()
    children: list = []
    for i in range(max(1, cfg.workers)):
        wcfg = replace(
            cfg, worker_id=f"{cfg.worker_id}-{i:02d}", lethal=True,
            telemetry=SchedTelemetry(),
        )
        proc = ctx.Process(
            target=_fleet_worker_entry, args=(list(specs), wcfg), daemon=True
        )
        proc.start()
        children.append(proc)
    _emit(cfg.hub, "fleet-start", workers=len(children), jobs=len(specs))

    deadline = time.monotonic() + cfg.join_timeout_s
    try:
        while True:
            done = _resolved(run_dir)
            if all(fp in done for fp in fingerprints):
                break
            alive = [p for p in children if p.is_alive()]
            if not alive or time.monotonic() > deadline:
                reason = (
                    "every fleet worker died"
                    if not alive else "fleet join timeout"
                )
                for p in alive:
                    p.terminate()
                tele.mode = "fleet-fallback"
                tele.fallbacks.append({
                    "from": "fleet", "to": "in-process", "reason": reason,
                })
                _emit(cfg.hub, "fallback-fleet", reason=reason)
                fallback = replace(
                    cfg, worker_id=f"{cfg.worker_id}-coord", lethal=False,
                    telemetry=tele,
                )
                fleet_worker(specs, fallback)
                break
            time.sleep(cfg.poll_s)
    finally:
        for p in children:
            if p.is_alive():
                p.terminate()
            p.join(timeout=5)
            if p.is_alive():  # pragma: no cover - stuck child
                p.kill()
                p.join(timeout=5)
    return merge_fleet(run_dir, specs, cfg=cfg, cache=cache)


def join_fleet(
    specs: Sequence["JobSpec"],
    cfg: FleetConfig,
    *,
    cache: "ResultCache | None" = None,
) -> list[dict[str, Any]]:
    """Run this process as one fleet worker, then merge.

    The cross-machine entry point (``repro sweep --join <run-id>``):
    every participating invocation points at the same shared journal
    directory and the same sweep arguments.  Each drains the queue
    until every job is resolved, then performs the (idempotent,
    deterministic) merge — so whichever worker you gave ``--out`` to
    writes the byte-identical document, and a late ``--join`` against a
    finished run is simply a merge with nothing left to claim.
    """
    tele = cfg.telemetry
    tele.mode = "fleet"
    tele.fleet_workers = 1
    tele.journal_run_id = cfg.run_id
    run_dir = fleet_dir(cfg.journal_root, cfg.run_id)
    completed = fleet_worker(specs, cfg)
    tele.resume_skips = len(specs) - completed
    return merge_fleet(run_dir, specs, cfg=cfg, cache=cache)
