"""The supervised worker pool behind ``repro.sched``.

``run_supervised`` executes a list of
:class:`~repro.sched.runner.JobSpec` s with the machinery a production
job scheduler treats as table stakes:

* **crash isolation** — each in-flight job runs in its own worker
  process behind a pipe; a dying worker fails only its job, and the
  pool refills the slot.
* **wall-clock timeouts** — a job past ``job_timeout_s`` has its worker
  terminated and is treated as a failed attempt.
* **bounded retries** — failed attempts retry with the exponential
  backoff + deterministic jitter of
  :class:`~repro.faults.plan.RetryPolicy`; after ``max_retries``
  retries the job is *quarantined* (the run finishes everything else,
  journals it, then raises :class:`QuarantineError`).
* **checkpointing** — every completed payload is appended to the run's
  :class:`~repro.resilience.journal.RunJournal` before the next job is
  considered, so an interrupt loses nothing that finished.
* **a graceful-degradation ladder** — pool creation failure or
  repeated worker death drops the run to serial in-process execution;
  a fast-backend divergence re-runs that job on the reference backend.
  Both degradations are recorded in the telemetry (and surface as CLI
  exit code 3).

Every supervision action (retry, timeout, crash, fallback, resume
skip, quarantine) is emitted as a ``sched`` activity record through
the configured :class:`~repro.prof.activity.ActivityHub`, so health
events appear in Chrome traces and NDJSON exports next to the device
timeline.

Chaos faults come from the scheduler-layer extensions of
:class:`~repro.faults.plan.FaultPlan`; decisions are keyed on the job
ordinal, so the injected schedule is identical across pool widths,
serial fallback, and resumes.  In pool mode crash and hang faults are
*real* (the worker hard-exits / sleeps past the timeout); in serial
mode they are simulated by raising the equivalent error.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from multiprocessing import connection as mp_connection
from typing import TYPE_CHECKING, Any, Sequence

from repro.common.errors import BackendDivergenceError, ReproError
from repro.faults.plan import FaultPlan, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.prof.activity import ActivityHub
    from repro.resilience.journal import RunJournal
    from repro.sched.cache import ResultCache
    from repro.sched.runner import JobSpec

__all__ = [
    "WorkerCrash",
    "JobTimeout",
    "PayloadCorruption",
    "QuarantineError",
    "SchedTelemetry",
    "ResilienceConfig",
    "run_supervised",
    "wall_clock_limit",
    "HANG_SLEEP_S",
]

#: how long an injected "hang" sleeps in a real worker — far beyond any
#: sane job timeout, so the supervisor's kill path is what ends it
HANG_SLEEP_S = 60.0

#: job timeout applied automatically when hang chaos is armed but the
#: caller set none (a hang fault with no timeout would deadlock the run)
_IMPLICIT_CHAOS_TIMEOUT_S = 5.0

#: upper bound on the *real* time spent sleeping out one backoff —
#: the policy's schedule is recorded verbatim in the retry event
_MAX_REAL_BACKOFF_S = 0.05


class WorkerCrash(ReproError):
    """A worker process died without delivering a result."""


class JobTimeout(ReproError):
    """A job exceeded its wall-clock budget and its worker was killed."""


class PayloadCorruption(ReproError):
    """A worker's result payload arrived truncated or corrupted."""


class QuarantineError(ReproError):
    """One or more jobs kept failing and were quarantined.

    Raised only after every other job has completed and been
    journaled, so a re-run with ``--resume`` retries just the
    quarantined work.
    """


# ----------------------------------------------------------------------
@dataclass
class SchedTelemetry:
    """What the supervisor did during one scheduler run.

    Exposed to the CLI for the ``--stats`` sidecar and the
    degraded-run exit code; the same events stream through the
    activity hub as ``sched`` records.
    """

    #: "serial" | "pool" | "serial-fallback" | "fleet" | "fleet-fallback"
    mode: str = "serial"
    completed: int = 0              #: jobs finished this run (journaled)
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    payload_faults: int = 0
    job_errors: int = 0
    resume_skips: int = 0
    fallbacks: list[dict[str, Any]] = field(default_factory=list)
    quarantined: list[dict[str, Any]] = field(default_factory=list)
    journal_run_id: str | None = None
    # fleet counters (filled by repro.resilience.fleet at merge time)
    fleet_workers: int = 0
    leases_acquired: int = 0
    leases_stolen: int = 0
    heartbeats: int = 0
    duplicate_completions: int = 0

    @property
    def degraded(self) -> bool:
        """Did the run finish only by stepping down the ladder?"""
        return bool(self.fallbacks) or self.mode in (
            "serial-fallback", "fleet-fallback"
        )

    def as_dict(self) -> dict[str, Any]:
        doc = {
            "mode": self.mode,
            "degraded": self.degraded,
            "completed": self.completed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "payload_faults": self.payload_faults,
            "job_errors": self.job_errors,
            "resume_skips": self.resume_skips,
            "fallbacks": list(self.fallbacks),
            "quarantined": list(self.quarantined),
            "journal_run_id": self.journal_run_id,
        }
        if self.fleet_workers:
            doc["fleet"] = {
                "workers": self.fleet_workers,
                "leases_acquired": self.leases_acquired,
                "leases_stolen": self.leases_stolen,
                "heartbeats": self.heartbeats,
                "duplicate_completions": self.duplicate_completions,
            }
        return doc


@dataclass
class ResilienceConfig:
    """Supervision policy for one scheduler run.

    The defaults give every run crash isolation and two retries at
    zero configuration; chaos, journaling, and health-event emission
    are opt-in.  ``telemetry`` is filled in during the run and read
    back by the caller afterwards.
    """

    max_retries: int = 2
    job_timeout_s: float | None = None
    retry_policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(jitter_frac=0.25)
    )
    chaos: FaultPlan | None = None
    journal: "RunJournal | None" = None
    hub: "ActivityHub | None" = None
    #: worker deaths (crashes + timeouts) before degrading to serial
    serial_fallback_after: int = 16
    telemetry: SchedTelemetry = field(default_factory=SchedTelemetry)


# ----------------------------------------------------------------------
def _worker_main(conn, spec: "JobSpec", action: str) -> None:
    """Entry point of one worker process: run one job, report, exit.

    ``action`` carries the chaos decision made in the parent so crashes
    and hangs are *real* process behaviour, not simulations.  Errors
    are reported through the pipe and exit cleanly — a nonzero exit
    with no message is what the parent counts as a crash.
    """
    # the parent's SIGTERM/SIGINT handlers were inherited across fork:
    # terminate() must kill us silently, and a terminal Ctrl-C must be
    # handled by the supervisor (which then terminates us), not by a
    # KeyboardInterrupt racing conn.send mid-payload
    if hasattr(signal, "SIGTERM"):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    if hasattr(signal, "SIGINT"):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    if action == "crash":
        os._exit(17)
    if action == "hang":
        time.sleep(HANG_SLEEP_S)
        os._exit(0)
    from repro.sched.runner import execute_job

    try:
        if action == "diverge":
            raise BackendDivergenceError(
                f"injected fast-backend divergence ({spec.benchmark})"
            )
        payload = execute_job(spec)
    except BaseException as exc:  # noqa: BLE001 - report across the pipe
        try:
            conn.send(
                (
                    "error",
                    type(exc).__name__,
                    str(exc),
                    isinstance(exc, BackendDivergenceError),
                )
            )
        except Exception:
            pass
        os._exit(0)
    try:
        conn.send(("ok", payload))
        conn.close()
    except Exception:
        os._exit(13)
    os._exit(0)


class _Task:
    """Mutable per-job supervision state."""

    __slots__ = ("index", "spec", "key", "fingerprint", "ordinal",
                 "attempts", "fell_back")

    def __init__(self, index, spec, key, fingerprint):
        self.index = index
        self.spec = spec
        self.key = key
        self.fingerprint = fingerprint
        self.ordinal = index          #: chaos/jitter decision key
        self.attempts = 0             #: failed attempts so far
        self.fell_back = False        #: already degraded to reference?


class _Active:
    """One occupied pool slot."""

    __slots__ = ("task", "proc", "conn", "deadline")

    def __init__(self, task, proc, conn, deadline):
        self.task = task
        self.proc = proc
        self.conn = conn
        self.deadline = deadline


def _emit(hub, name: str, **args: Any) -> None:
    if hub is not None and hub.wants("sched"):
        hub.emit("sched", name, track="scheduler", **args)


@contextmanager
def wall_clock_limit(seconds: float | None, subject: str = ""):
    """Raise :class:`JobTimeout` if the block runs past ``seconds``.

    Signal-based (``SIGALRM``), so it only arms in the main thread on
    POSIX; elsewhere it is a no-op.  Used for in-process units the pool
    cannot isolate (the ``repro check`` live runs).
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise JobTimeout(
            f"{subject or 'unit'} exceeded {seconds:g}s wall clock"
        )

    old = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old)


# ----------------------------------------------------------------------
def run_supervised(
    specs: Sequence["JobSpec"],
    *,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
    config: ResilienceConfig | None = None,
) -> list[dict[str, Any]]:
    """Execute jobs under supervision; order-preserving payload list.

    Resolution order per job: journal (resume) → result cache → live
    execution.  Completed payloads are cached and journaled as they
    arrive; the parent owns all cache/journal traffic, so workers stay
    side-effect-free.
    """
    from repro.obs.trace import TraceContext
    from repro.resilience.journal import job_fingerprint
    from repro.sched.runner import _cache_key, execute_job

    config = config or ResilienceConfig()
    tele = config.telemetry
    chaos = config.chaos
    journal = config.journal
    hub = config.hub
    if journal is not None:
        tele.journal_run_id = journal.run_id
    if cache is not None and chaos is not None and cache.chaos is None:
        cache.chaos = chaos

    # one run = one trace; span ids derive from the journal's run id so
    # a --resume re-mints the identical tree
    root_ctx = (
        TraceContext.root(journal.run_id) if journal is not None else None
    )

    def job_ctx(spec: "JobSpec", ordinal: int) -> "TraceContext | None":
        if spec.trace is not None:
            return spec.trace
        return root_ctx.job(ordinal) if root_ctx is not None else None

    def job_meta(
        spec: "JobSpec", ordinal: int, **extra: Any
    ) -> dict[str, Any]:
        meta: dict[str, Any] = {
            "benchmark": spec.benchmark, "job": ordinal, **extra,
        }
        ctx = job_ctx(spec, ordinal)
        if ctx is not None:
            meta.update(ctx.as_dict())
        return meta

    timeout = config.job_timeout_s
    if timeout is None and chaos is not None and chaos.worker_hang_prob > 0:
        timeout = _IMPLICIT_CHAOS_TIMEOUT_S

    payloads: list[dict[str, Any] | None] = [None] * len(specs)
    queue: deque[_Task] = deque()
    for i, spec in enumerate(specs):
        fingerprint = job_fingerprint(spec) if journal is not None else None
        if fingerprint is not None and fingerprint in journal.completed:
            payloads[i] = journal.completed[fingerprint]
            tele.resume_skips += 1
            _emit(hub, "resume-skip", benchmark=spec.benchmark, job=i)
            continue
        key = _cache_key(cache, spec) if cache is not None else None
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            payloads[i] = hit
            if journal is not None:
                journal.record(
                    fingerprint, hit,
                    meta=job_meta(spec, i, source="cache"),
                )
            continue
        queue.append(_Task(i, spec, key, fingerprint))

    pool_enabled = jobs > 1 and len(queue) > 1
    tele.mode = "pool" if pool_enabled else "serial"

    # flight recorder: keep the last records around so a quarantine can
    # dump what the run was doing on the way down
    recorder = None
    recorder_sid = None
    prev_trace = None
    if hub is not None:
        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder(
            worker="pool",
            run_id=journal.run_id if journal is not None else None,
        )
        recorder_sid = hub.subscribe(recorder)
        prev_trace = hub.trace
        if root_ctx is not None:
            hub.trace = root_ctx

    # -- shared completion / failure handling --------------------------
    def complete(task: _Task, payload: dict[str, Any]) -> None:
        payloads[task.index] = payload
        if cache is not None and task.key is not None:
            cache.put(task.key, payload)
        if journal is not None:
            journal.record(
                task.fingerprint, payload,
                meta=job_meta(
                    task.spec, task.index,
                    kind=task.spec.kind,
                    backend=task.spec.backend,
                    attempts=task.attempts + 1,
                ),
            )
        tele.completed += 1
        if chaos is not None and chaos.interrupts_after(tele.completed):
            # deterministic SIGINT analog for interrupt-and-resume tests
            raise KeyboardInterrupt

    def check_payload(task: _Task, payload: dict[str, Any]) -> None:
        if chaos is None:
            return
        kind = chaos.payload_outcome(task.ordinal, task.attempts)
        if kind != "ok":
            raise PayloadCorruption(
                f"{kind}d result payload (job {task.ordinal}, "
                f"attempt {task.attempts})"
            )

    def chaos_action(task: _Task) -> str:
        if chaos is None:
            return "run"
        if (
            task.spec.backend == "fast"
            and not task.fell_back
            and chaos.job_diverges(task.ordinal)
        ):
            return "diverge"
        outcome = chaos.worker_outcome(task.ordinal, task.attempts)
        return outcome if outcome != "ok" else "run"

    def handle_failure(task: _Task, exc: BaseException) -> str:
        """Route one failed attempt: "fallback" | "retry" | "quarantine"."""
        what = dict(benchmark=task.spec.benchmark, job=task.ordinal)
        if (
            isinstance(exc, BackendDivergenceError)
            and task.spec.backend == "fast"
            and not task.fell_back
        ):
            task.fell_back = True
            task.spec = replace(task.spec, backend="reference")
            tele.fallbacks.append(
                {**what, "from": "fast", "to": "reference", "reason": str(exc)}
            )
            _emit(hub, "fallback-reference", **what, reason=str(exc))
            return "fallback"
        if isinstance(exc, JobTimeout):
            tele.timeouts += 1
            _emit(hub, "timeout", **what, error=str(exc))
        elif isinstance(exc, WorkerCrash):
            tele.crashes += 1
            _emit(hub, "worker-crash", **what, error=str(exc))
        elif isinstance(exc, PayloadCorruption):
            tele.payload_faults += 1
            _emit(hub, "payload-fault", **what, error=str(exc))
        else:
            tele.job_errors += 1
            _emit(hub, "job-error", **what, error=str(exc))
        task.attempts += 1
        if task.attempts > config.max_retries:
            tele.quarantined.append(
                {**what, "attempts": task.attempts, "error": str(exc)}
            )
            _emit(hub, "quarantine", **what, attempts=task.attempts)
            return "quarantine"
        retry = task.attempts - 1
        u = chaos.retry_jitter(task.ordinal, retry) if chaos is not None else 0.0
        delay = config.retry_policy.backoff(retry, u)
        tele.retries += 1
        _emit(hub, "retry", **what, attempt=task.attempts, backoff_s=delay)
        time.sleep(min(delay, _MAX_REAL_BACKOFF_S))
        return "retry"

    def run_serial_task(task: _Task) -> None:
        while True:
            try:
                action = chaos_action(task)
                if action == "crash":
                    raise WorkerCrash(
                        f"injected worker crash (job {task.ordinal})"
                    )
                if action == "hang":
                    raise JobTimeout(
                        f"injected worker hang (job {task.ordinal})"
                    )
                if action == "diverge":
                    raise BackendDivergenceError(
                        f"injected fast-backend divergence "
                        f"({task.spec.benchmark})"
                    )
                payload = execute_job(task.spec)
                check_payload(task, payload)
            except ReproError as exc:
                if handle_failure(task, exc) == "quarantine":
                    return
                continue
            complete(task, payload)
            return

    # -- pool machinery ------------------------------------------------
    import multiprocessing

    ctx = multiprocessing.get_context()
    active: dict[int, _Active] = {}
    next_slot = 0
    deaths = 0

    def start_worker(task: _Task) -> _Active:
        action = chaos_action(task)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main, args=(child_conn, task.spec, action),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline = (time.monotonic() + timeout) if timeout else None
        return _Active(task, proc, parent_conn, deadline)

    def stop_worker(a: _Active) -> None:
        if a.proc.is_alive():
            a.proc.terminate()
        a.proc.join(timeout=5)
        if a.proc.is_alive():  # pragma: no cover - stuck in uninterruptible IO
            a.proc.kill()
            a.proc.join(timeout=5)
        a.conn.close()

    def degrade_to_serial(reason: str) -> None:
        nonlocal pool_enabled
        pool_enabled = False
        tele.mode = "serial-fallback"
        _emit(hub, "fallback-serial", reason=reason)
        for a in list(active.values()):
            stop_worker(a)
            queue.appendleft(a.task)
        active.clear()

    def worker_died(a: _Active, exc: ReproError) -> None:
        nonlocal deaths
        deaths += 1
        task = a.task
        if handle_failure(task, exc) != "quarantine":
            queue.append(task)
        if pool_enabled and deaths >= config.serial_fallback_after:
            degrade_to_serial(
                f"{deaths} worker death(s); continuing serially"
            )

    width = max(1, jobs)
    try:
        while queue or active:
            if not pool_enabled:
                if active:  # pragma: no cover - defensive (drained above)
                    for a in list(active.values()):
                        stop_worker(a)
                        queue.appendleft(a.task)
                    active.clear()
                run_serial_task(queue.popleft())
                continue

            # refill free slots
            while queue and len(active) < width:
                task = queue.popleft()
                try:
                    active[next_slot] = start_worker(task)
                    next_slot += 1
                except OSError as exc:
                    queue.appendleft(task)
                    degrade_to_serial(f"worker pool unavailable: {exc}")
                    break
            if not pool_enabled or not active:
                continue

            now = time.monotonic()
            deadlines = [a.deadline for a in active.values() if a.deadline]
            wait_s = None
            if deadlines:
                wait_s = max(0.0, min(deadlines) - now)
            ready = mp_connection.wait(
                [a.conn for a in active.values()], timeout=wait_s
            )
            now = time.monotonic()
            for slot, a in list(active.items()):
                if slot not in active:
                    # a worker_died → degrade_to_serial on an earlier
                    # slot drained the pool mid-iteration; this slot's
                    # task is already re-queued for serial execution
                    continue
                task = a.task
                if a.conn in ready:
                    try:
                        msg = a.conn.recv()
                    except (EOFError, OSError):
                        msg = None
                    del active[slot]
                    if msg is None:
                        stop_worker(a)
                        worker_died(
                            a,
                            WorkerCrash(
                                f"worker for job {task.ordinal} "
                                f"({task.spec.benchmark}) died "
                                f"(exit {a.proc.exitcode})"
                            ),
                        )
                        continue
                    stop_worker(a)
                    if msg[0] == "ok":
                        payload = msg[1]
                        try:
                            check_payload(task, payload)
                        except PayloadCorruption as exc:
                            if handle_failure(task, exc) != "quarantine":
                                queue.append(task)
                            continue
                        complete(task, payload)
                    else:
                        _, exc_name, message, is_divergence = msg
                        exc: ReproError
                        if is_divergence:
                            exc = BackendDivergenceError(message)
                        else:
                            exc = ReproError(f"{exc_name}: {message}")
                        if handle_failure(task, exc) != "quarantine":
                            queue.append(task)
                elif a.deadline is not None and now >= a.deadline:
                    del active[slot]
                    stop_worker(a)
                    worker_died(
                        a,
                        JobTimeout(
                            f"job {task.ordinal} ({task.spec.benchmark}) "
                            f"exceeded {timeout:g}s wall clock"
                        ),
                    )
    finally:
        # never leak child processes: Ctrl-C, chaos interrupts, and
        # raising jobs all pass through here before unwinding
        for a in list(active.values()):
            stop_worker(a)
        active.clear()
        if hub is not None and recorder_sid is not None:
            hub.unsubscribe(recorder_sid)
            hub.trace = prev_trace

    if tele.quarantined:
        if recorder is not None and journal is not None and len(recorder):
            recorder.dump(
                journal.path.parent / "flightrec" / journal.run_id,
                reason="quarantine",
            )
        names = ", ".join(
            f"{q['benchmark']}#{q['job']}" for q in tele.quarantined
        )
        hint = (
            f"; completed work is journaled as run {journal.run_id}"
            if journal is not None
            else ""
        )
        raise QuarantineError(
            f"{len(tele.quarantined)} job(s) quarantined after retry "
            f"exhaustion: {names}{hint}"
        )
    return payloads  # type: ignore[return-value]
