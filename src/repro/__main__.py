"""Command-line interface: run microbenchmarks and regenerate figures.

Usage examples::

    python -m repro list
    python -m repro table1
    python -m repro run CoMem --system carina -p n=4194304
    python -m repro sweep CoMem --values 262144,1048576,4194304
    python -m repro specs
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro.arch.presets import get_system, list_gpus
from repro.common.errors import ReproError
from repro.common.tables import render_table
from repro.core.registry import ALL_BENCHMARKS, get_benchmark, list_benchmarks
from repro.core.suite import run_suite


def _parse_params(pairs: list[str]) -> dict[str, Any]:
    """Parse ``-p key=value`` pairs, int/float-coercing values."""
    out: dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad parameter {pair!r}; expected key=value")
        key, raw = pair.split("=", 1)
        value: Any
        try:
            value = int(raw, 0)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        out[key] = value
    return out


def cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        [cls.name, cls.category, cls.paper_speedup, cls.default_system.gpu.name]
        for cls in ALL_BENCHMARKS
    ]
    print(
        render_table(
            ["benchmark", "guideline", "paper speedup", "default GPU"],
            rows,
            title="CUDAMicroBench microbenchmarks",
        )
    )
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    report = run_suite()
    print(report.render())
    return 0 if report.all_verified else 1


def cmd_run(args: argparse.Namespace) -> int:
    system = get_system(args.system) if args.system else None
    bench = get_benchmark(args.benchmark, system)
    result = bench.run(**_parse_params(args.param))
    print(result)
    if result.metrics:
        print("metrics:")
        for k, v in result.metrics.items():
            print(f"  {k}: {v:.6g}")
    if result.notes:
        print(result.notes)
    return 0 if result.verified else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    system = get_system(args.system) if args.system else None
    bench = get_benchmark(args.benchmark, system)
    values = (
        [int(v, 0) for v in args.values.split(",")] if args.values else None
    )
    sweep = bench.sweep(values, **_parse_params(args.param))
    print(sweep.render())
    return 0


def cmd_specs(_args: argparse.Namespace) -> int:
    from repro.arch.presets import get_gpu

    rows = []
    for name in list_gpus():
        g = get_gpu(name)
        rows.append(
            [
                g.name,
                f"{g.compute_capability[0]}.{g.compute_capability[1]}",
                g.sm_count,
                f"{g.clock_hz / 1e9:.2f}",
                f"{g.dram_bandwidth / 1e9:.0f}",
                f"{g.l2_size // 1024 // 1024} MiB",
                "yes" if g.global_loads_cached_in_l1 else "no",
            ]
        )
    print(
        render_table(
            ["GPU", "CC", "SMs", "GHz", "GB/s", "L2", "L1 for loads"],
            rows,
            title="preset architectures",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="CUDAMicroBench reproduction: simulated GPU microbenchmarks",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the fourteen microbenchmarks").set_defaults(
        fn=cmd_list
    )
    sub.add_parser(
        "table1", help="run the full suite and print Table I"
    ).set_defaults(fn=cmd_table1)
    sub.add_parser("specs", help="show the preset GPU architectures").set_defaults(
        fn=cmd_specs
    )

    run_p = sub.add_parser("run", help="run one microbenchmark")
    run_p.add_argument("benchmark", help="Table I name, e.g. CoMem")
    run_p.add_argument("--system", help="carina | fornax | rtx3080")
    run_p.add_argument(
        "-p", "--param", action="append", default=[], help="key=value run parameter"
    )
    run_p.set_defaults(fn=cmd_run)

    sweep_p = sub.add_parser("sweep", help="regenerate a benchmark's figure sweep")
    sweep_p.add_argument("benchmark")
    sweep_p.add_argument("--system", help="carina | fornax | rtx3080")
    sweep_p.add_argument("--values", help="comma-separated sweep values")
    sweep_p.add_argument(
        "-p", "--param", action="append", default=[], help="key=value run parameter"
    )
    sweep_p.set_defaults(fn=cmd_sweep)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
