"""Command-line interface: run microbenchmarks and regenerate figures.

Usage examples::

    python -m repro list
    python -m repro table1
    python -m repro run CoMem --system carina -p n=4194304
    python -m repro sweep CoMem --values 262144,1048576,4194304
    python -m repro specs
    python -m repro doctor CoMem
    python -m repro sanitize MemAlign --tool all
    python -m repro sanitize oob-write --tool memcheck
    python -m repro sanitize MemAlign --fault-seed 3 --h2d-fail-prob 0.5

Exit codes: ``doctor`` and ``sanitize`` exit 1 when any critical
finding is reported, 2 on a runtime error, 0 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro.arch.presets import get_system, list_gpus
from repro.common.errors import ReproError
from repro.common.tables import render_table
from repro.core.registry import ALL_BENCHMARKS, get_benchmark, list_benchmarks
from repro.core.suite import run_suite


def _parse_params(pairs: list[str]) -> dict[str, Any]:
    """Parse ``-p key=value`` pairs, int/float-coercing values."""
    out: dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad parameter {pair!r}; expected key=value")
        key, raw = pair.split("=", 1)
        value: Any
        try:
            value = int(raw, 0)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        out[key] = value
    return out


def cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        [cls.name, cls.category, cls.paper_speedup, cls.default_system.gpu.name]
        for cls in ALL_BENCHMARKS
    ]
    print(
        render_table(
            ["benchmark", "guideline", "paper speedup", "default GPU"],
            rows,
            title="CUDAMicroBench microbenchmarks",
        )
    )
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    report = run_suite()
    print(report.render())
    return 0 if report.all_verified else 1


def cmd_run(args: argparse.Namespace) -> int:
    system = get_system(args.system) if args.system else None
    bench = get_benchmark(args.benchmark, system)
    result = bench.run(**_parse_params(args.param))
    print(result)
    if result.metrics:
        print("metrics:")
        for k, v in result.metrics.items():
            print(f"  {k}: {v:.6g}")
    if result.notes:
        print(result.notes)
    return 0 if result.verified else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    system = get_system(args.system) if args.system else None
    bench = get_benchmark(args.benchmark, system)
    values = (
        [int(v, 0) for v in args.values.split(",")] if args.values else None
    )
    sweep = bench.sweep(values, **_parse_params(args.param))
    print(sweep.render())
    return 0


def cmd_specs(_args: argparse.Namespace) -> int:
    from repro.arch.presets import get_gpu

    rows = []
    for name in list_gpus():
        g = get_gpu(name)
        rows.append(
            [
                g.name,
                f"{g.compute_capability[0]}.{g.compute_capability[1]}",
                g.sm_count,
                f"{g.clock_hz / 1e9:.2f}",
                f"{g.dram_bandwidth / 1e9:.0f}",
                f"{g.l2_size // 1024 // 1024} MiB",
                "yes" if g.global_loads_cached_in_l1 else "no",
            ]
        )
    print(
        render_table(
            ["GPU", "CC", "SMs", "GHz", "GB/s", "L2", "L1 for loads"],
            rows,
            title="preset architectures",
        )
    )
    return 0


def cmd_doctor(args: argparse.Namespace) -> int:
    """Run a benchmark and print the performance doctor's findings.

    Exits 1 if any finding is critical — usable as a CI gate.
    """
    from repro.host.doctor import diagnose
    from repro.sanitize.session import sanitize_session

    system = get_system(args.system) if args.system else None
    bench = get_benchmark(args.benchmark, system)
    with sanitize_session() as session:
        bench.run(**_parse_params(args.param))
    findings = []
    seen: set[str] = set()
    for rt in session.runtimes:
        for stats, _ in rt.kernel_log:
            if stats.name in seen:
                continue
            seen.add(stats.name)
            findings.extend(diagnose(stats, rt.gpu))
    if not findings:
        print(f"{args.benchmark}: no findings")
        return 0
    print(f"{args.benchmark}: {len(findings)} finding(s)")
    for f in findings:
        print(f"  {f}")
    return 1 if any(f.severity == "critical" for f in findings) else 0


def cmd_sanitize(args: argparse.Namespace) -> int:
    """Run a benchmark or demo under the compute-sanitizer analog.

    ``target`` is a Table I benchmark name or a demo from
    :mod:`repro.sanitize.demos`.  Exits 1 on any critical finding,
    2 if the run itself died on a runtime error.
    """
    from repro.faults import FaultPlan
    from repro.host.runtime import CudaLite
    from repro.sanitize import Sanitizer, sanitize_session
    from repro.sanitize.demos import DEMOS, run_demo

    plan = None
    if (
        args.fault_seed is not None
        or args.h2d_fail_prob
        or args.d2h_fail_prob
        or args.corrupt_prob
        or args.abort_at is not None
        or args.alloc_fail_after is not None
        or args.stall_every is not None
    ):
        plan = FaultPlan(
            args.fault_seed or 0,
            alloc_fail_after_bytes=args.alloc_fail_after,
            h2d_fail_prob=args.h2d_fail_prob,
            d2h_fail_prob=args.d2h_fail_prob,
            corrupt_prob=args.corrupt_prob,
            kernel_abort_at=args.abort_at,
            max_transfer_failures=args.max_transfer_failures,
            stall_every=args.stall_every,
        )
    san = Sanitizer(args.tool)
    status = 0
    with sanitize_session(
        sanitizer=san, faults=plan, watchdog_cycles=args.watchdog
    ) as session:
        try:
            if args.target in DEMOS:
                rt = CudaLite()
                run_demo(args.target, rt, **_parse_params(args.param))
            else:
                system = get_system(args.system) if args.system else None
                bench = get_benchmark(args.target, system)
                bench.run(**_parse_params(args.param))
        except ReproError as exc:
            print(f"run aborted: {exc}", file=sys.stderr)
            status = 2
    print(san.report().render())
    fault_logs = [rt.fault_log for rt in session.runtimes if rt.fault_log.events]
    for log in fault_logs:
        print(log.render())
    if status == 0 and not san.report().ok:
        status = 1
    return status


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="CUDAMicroBench reproduction: simulated GPU microbenchmarks",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the fourteen microbenchmarks").set_defaults(
        fn=cmd_list
    )
    sub.add_parser(
        "table1", help="run the full suite and print Table I"
    ).set_defaults(fn=cmd_table1)
    sub.add_parser("specs", help="show the preset GPU architectures").set_defaults(
        fn=cmd_specs
    )

    run_p = sub.add_parser("run", help="run one microbenchmark")
    run_p.add_argument("benchmark", help="Table I name, e.g. CoMem")
    run_p.add_argument("--system", help="carina | fornax | rtx3080")
    run_p.add_argument(
        "-p", "--param", action="append", default=[], help="key=value run parameter"
    )
    run_p.set_defaults(fn=cmd_run)

    sweep_p = sub.add_parser("sweep", help="regenerate a benchmark's figure sweep")
    sweep_p.add_argument("benchmark")
    sweep_p.add_argument("--system", help="carina | fornax | rtx3080")
    sweep_p.add_argument("--values", help="comma-separated sweep values")
    sweep_p.add_argument(
        "-p", "--param", action="append", default=[], help="key=value run parameter"
    )
    sweep_p.set_defaults(fn=cmd_sweep)

    doc_p = sub.add_parser(
        "doctor", help="diagnose a benchmark's kernels for performance bugs"
    )
    doc_p.add_argument("benchmark", help="Table I name, e.g. CoMem")
    doc_p.add_argument("--system", help="carina | fornax | rtx3080")
    doc_p.add_argument(
        "-p", "--param", action="append", default=[], help="key=value run parameter"
    )
    doc_p.set_defaults(fn=cmd_doctor)

    san_p = sub.add_parser(
        "sanitize",
        help="run under the compute-sanitizer analog, with optional fault injection",
    )
    san_p.add_argument(
        "target", help="benchmark (e.g. MemAlign) or demo (e.g. oob-write)"
    )
    san_p.add_argument(
        "--tool",
        default="all",
        choices=("all", "memcheck", "racecheck", "synccheck", "leakcheck"),
        help="sanitizer tool to enable (default: all)",
    )
    san_p.add_argument("--system", help="carina | fornax | rtx3080")
    san_p.add_argument(
        "--fault-seed", type=int, default=None, help="seed for the fault plan"
    )
    san_p.add_argument("--h2d-fail-prob", type=float, default=0.0)
    san_p.add_argument("--d2h-fail-prob", type=float, default=0.0)
    san_p.add_argument("--corrupt-prob", type=float, default=0.0)
    san_p.add_argument(
        "--abort-at", type=int, default=None, help="0-based launch ordinal to abort"
    )
    san_p.add_argument(
        "--alloc-fail-after", type=int, default=None, help="allocation byte budget"
    )
    san_p.add_argument(
        "--max-transfer-failures",
        type=int,
        default=None,
        help="cap on injected transfer failures (1 = fail once, then recover)",
    )
    san_p.add_argument(
        "--stall-every", type=int, default=None, help="stall every N-th stream op"
    )
    san_p.add_argument(
        "--watchdog", type=float, default=None, help="issue-cycle budget per kernel"
    )
    san_p.add_argument(
        "-p", "--param", action="append", default=[], help="key=value run parameter"
    )
    san_p.set_defaults(fn=cmd_sanitize)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
