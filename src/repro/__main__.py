"""Command-line interface: run microbenchmarks and regenerate figures.

Usage examples::

    python -m repro list
    python -m repro table1
    python -m repro table1 --jobs 4 --backend fast
    python -m repro table1 --jobs 4 --run-id nightly --out table1.json
    python -m repro table1 --resume nightly --out table1.json
    python -m repro run CoMem --system carina -p n=4194304
    python -m repro sweep CoMem --values 262144,1048576,4194304
    python -m repro sweep CoMem --values 262144,1048576 --jobs 2 --out f9.json
    python -m repro sweep CoMem --values 262144,1048576 --jobs 2 \
        --chaos seed=7,crash=0.4,hang=0.2,max-fault-attempts=2 --job-timeout 10
    python -m repro sweep CoMem --values 262144,1048576 --fleet 2 \
        --trace fleet_trace.json --metrics metrics.prom
    python -m repro top <run-id> --once
    python -m repro journal show <run-id> --trace <trace-id-prefix>
    python -m repro specs
    python -m repro doctor CoMem
    python -m repro sanitize MemAlign --tool all
    python -m repro sanitize oob-write --tool memcheck
    python -m repro sanitize MemAlign --fault-seed 3 --h2d-fail-prob 0.5
    python -m repro profile WarpDivRedux --trace trace.json
    python -m repro run CoMem --trace trace.json --json metrics.json
    python -m repro prof diff before.json after.json
    python -m repro prof diff before.json after.json --claims benchmarks/claims
    python -m repro prof roofline metrics.json
    python -m repro check --all
    python -m repro check CoMem BankRedux --backend both
    python -m repro check --all --quick --json conformance.json
    python -m repro check --doc benchmarks/results/table1_summary.json

Exit codes: ``doctor`` and ``sanitize`` exit 1 when any critical
finding is reported, ``prof diff`` exits 1 when a metric regresses
beyond its threshold (or a ``--claims`` claim fails), ``check`` exits 1
when any conformance check fails; every command exits 2 on a runtime
error and 0 otherwise.  Supervised runs (``run``/``sweep``/``table1``/
``check`` with ``--jobs`` or any resilience flag) add two more: 3 when
the run completed only through a degradation fallback (fast backend
re-run on the reference oracle, or the worker pool dropping to serial),
and 4 when the run was interrupted (SIGINT/SIGTERM) with the completed
work checkpointed to the run journal — finish it with ``--resume``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

from repro.arch.presets import get_system, list_gpus
from repro.common.errors import ReproError
from repro.common.tables import render_table
from repro.core.registry import ALL_BENCHMARKS, get_benchmark, list_benchmarks
from repro.core.suite import run_suite


def _parse_params(pairs: list[str]) -> dict[str, Any]:
    """Parse ``-p key=value`` pairs, int/float-coercing values."""
    out: dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad parameter {pair!r}; expected key=value")
        key, raw = pair.split("=", 1)
        value: Any
        try:
            value = int(raw, 0)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        out[key] = value
    return out


def _backend_scope(args: argparse.Namespace):
    """Context manager applying ``--backend`` to runtimes created inside."""
    from contextlib import nullcontext

    backend = getattr(args, "backend", None)
    if backend:
        from repro.exec import use_backend

        return use_backend(backend)
    return nullcontext()


def _make_cache(args: argparse.Namespace):
    from repro.sched import ResultCache

    return ResultCache(args.cache_dir, enabled=not args.no_cache)


def _resilience_requested(args: argparse.Namespace) -> bool:
    """Did any flag explicitly ask for the supervised scheduler?"""
    return any(
        getattr(args, name, None) is not None
        for name in ("max_retries", "job_timeout", "resume", "run_id", "chaos")
    )


def _fleet_requested(args: argparse.Namespace) -> bool:
    """Did ``--fleet`` or ``--join`` ask for the work-stealing fleet?"""
    return (
        getattr(args, "fleet", None) is not None
        or getattr(args, "join", None) is not None
    )


def _make_fleet(args: argparse.Namespace, *, command: str):
    """Build the fleet configuration from ``--fleet``/``--join`` flags."""
    from repro.resilience import FleetConfig, new_run_id, parse_chaos

    if not _fleet_requested(args):
        return None
    if getattr(args, "fleet", None) is not None and getattr(args, "join", None):
        raise ReproError(
            "--fleet and --join are mutually exclusive: --fleet spawns "
            "local workers for a new run, --join adds this process to an "
            "existing one"
        )
    if getattr(args, "resume", None):
        raise ReproError(
            "--resume does not apply to fleet runs; re-join an "
            "interrupted fleet with --join <run-id> instead"
        )
    if args.join:
        run_id, workers = args.join, 0
    else:
        if args.fleet <= 0:
            raise ReproError(
                f"--fleet needs a positive worker count, got {args.fleet}"
            )
        run_id, workers = (getattr(args, "run_id", None) or new_run_id()), args.fleet
    ttl = args.lease_ttl if args.lease_ttl is not None else 5.0
    heartbeat = (
        args.heartbeat if args.heartbeat is not None else max(ttl / 3.0, 1e-3)
    )
    kwargs: dict[str, Any] = {}
    if getattr(args, "max_retries", None) is not None:
        kwargs["max_retries"] = args.max_retries
    return FleetConfig(
        run_id=run_id,
        worker_id=getattr(args, "worker_id", None) or "",
        workers=workers,
        journal_root=args.journal_dir,
        command=command,
        heartbeat_s=heartbeat,
        lease_ttl_s=ttl,
        chaos=parse_chaos(args.chaos) if getattr(args, "chaos", None) else None,
        **kwargs,
    )


def _fleet_resilience(fleet):
    """A resilience shim sharing the fleet's telemetry, so the stats
    sidecar, degradation exit code, and execution section all read the
    fleet run without a parallel code path."""
    from repro.resilience import ResilienceConfig

    shim = ResilienceConfig()
    shim.telemetry = fleet.telemetry
    return shim


def _make_resilience(args: argparse.Namespace, *, command: str):
    """Build the supervision policy (and run journal) from CLI flags."""
    from repro.resilience import ResilienceConfig, RunJournal, parse_chaos

    chaos = parse_chaos(args.chaos) if getattr(args, "chaos", None) else None
    journal = None
    if not getattr(args, "no_journal", False):
        if getattr(args, "resume", None):
            journal = RunJournal.resume(args.journal_dir, args.resume)
        else:
            journal = RunJournal.create(
                args.journal_dir,
                run_id=getattr(args, "run_id", None),
                meta={"command": command},
            )
    kwargs: dict[str, Any] = {}
    if getattr(args, "max_retries", None) is not None:
        kwargs["max_retries"] = args.max_retries
    if getattr(args, "job_timeout", None) is not None:
        kwargs["job_timeout_s"] = args.job_timeout
    # a hub gives the supervisor somewhere to hang its flight recorder,
    # so a quarantine dumps the run's last sched events post-mortem
    from repro.prof.activity import ActivityHub

    return ResilienceConfig(
        chaos=chaos, journal=journal, hub=ActivityHub(), **kwargs
    )


def _sigterm_as_interrupt():
    """Translate SIGTERM into KeyboardInterrupt around a scheduler run,
    so a polite kill flushes the journal and exits 4 just like Ctrl-C."""
    import signal
    import threading
    from contextlib import contextmanager, nullcontext

    if (
        not hasattr(signal, "SIGTERM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return nullcontext()

    @contextmanager
    def _scope():
        def _raise(signum, frame):
            raise KeyboardInterrupt

        old = signal.signal(signal.SIGTERM, _raise)
        try:
            yield
        finally:
            signal.signal(signal.SIGTERM, old)

    return _scope()


def _interrupted(resilience, fleet=None) -> int:
    """Exit code 4: interrupted, journal flushed, partial results saved."""
    tele = resilience.telemetry
    if fleet is not None:
        print(
            f"interrupted: fleet run {fleet.run_id} keeps each worker's "
            f"completed jobs in its own journal; finish with "
            f"--join {fleet.run_id}",
            file=sys.stderr,
        )
    elif resilience.journal is not None:
        run_id = resilience.journal.run_id
        resilience.journal.close()
        print(
            f"interrupted: {tele.completed} completed job(s) saved to "
            f"journal run {run_id}; finish with --resume {run_id}",
            file=sys.stderr,
        )
    else:
        print(
            "interrupted: journaling disabled (--no-journal), partial "
            "results discarded",
            file=sys.stderr,
        )
    return 4


def _resume_noop(args: argparse.Namespace, resilience) -> bool:
    """Was ``--resume`` pointed at an already-complete run?

    Nothing executed, nothing quarantined, every job replayed from the
    journal — so the run's artifacts were already written by the run
    that completed it and must not be re-written here.
    """
    if getattr(args, "resume", None) is None or resilience is None:
        return False
    tele = resilience.telemetry
    return (
        tele.completed == 0
        and tele.resume_skips > 0
        and not tele.quarantined
    )


def _print_resume_noop(args: argparse.Namespace, resilience) -> None:
    tele = resilience.telemetry
    print(
        f"nothing to do: run {args.resume} already complete "
        f"({tele.resume_skips} job(s) journaled); artifacts unchanged"
    )


def _sched_status(status: int, resilience) -> int:
    """Map a command's natural exit through the degradation ladder.

    A run that finished only via a fallback (fast backend re-run on the
    reference oracle, pool dropped to serial) exits 3 instead of 0 —
    results are valid but the configuration asked for did not hold.
    """
    if resilience is not None:
        if resilience.journal is not None:
            resilience.journal.close()
        if status == 0 and resilience.telemetry.degraded:
            return 3
    return status


def _execution_section(resilience) -> dict[str, Any]:
    """The result document's ``execution`` section.

    Present only when the run degraded, so clean documents stay
    byte-identical across serial/parallel/cold/warm/resumed runs while
    a fallback (the one case where the configuration asked for was not
    what actually ran) is recorded next to the results it produced.
    """
    if resilience is None or not resilience.telemetry.fallbacks:
        return {}
    tele = resilience.telemetry
    return {
        "execution": {"mode": tele.mode, "fallbacks": list(tele.fallbacks)}
    }


def _write_sched_stats(
    args: argparse.Namespace, cache, *, benchmark: str, jobs: int,
    resilience=None,
) -> None:
    """Write the ``--stats`` sidecar: backend, cache, and supervision
    counters.

    Kept separate from ``--out`` so result documents stay byte-identical
    across cold/warm and serial/parallel runs while the scheduler's
    behaviour remains observable.
    """
    if not getattr(args, "stats", None):
        return
    import json

    from repro.exec import current_backend_name

    backend = current_backend_name(getattr(args, "backend", None))
    doc = {
        "schema": "repro-prof-sched/1",
        "benchmark": benchmark,
        "backend": backend,
        "jobs": jobs,
        "cache": cache.stats() if cache is not None else None,
    }
    if backend == "jit":
        from repro.jit import jit_stats

        # artifact-store counters (trace reuse), next to the result cache
        doc["jit"] = jit_stats()
    if resilience is not None:
        doc["execution"] = resilience.telemetry.as_dict()
    path = Path(args.stats)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"scheduler stats written to {path}")


def _pool_flight_dumps(args: argparse.Namespace, resilience) -> int | None:
    """How many flight-recorder dumps this journaled pool run left."""
    if resilience is None or resilience.journal is None:
        return None
    from repro.obs import list_flight_dumps

    return len(list_flight_dumps(
        Path(args.journal_dir) / "flightrec" / resilience.journal.run_id
    ))


def _metrics_snapshot(
    args: argparse.Namespace, *, command: str, fleet=None, resilience=None,
    cache=None, jobs_total: int | None = None,
):
    """The sample-set callable behind ``--metrics``/``--metrics-port``.

    Fleet runs scan the shared coordination directory read-only — safe
    to call from any process at any time, and incapable of perturbing
    the run's byte-identical merge.  Pool runs read the in-process
    scheduler telemetry, which the parent updates as results arrive.
    """
    from repro.obs import fleet_samples, telemetry_samples

    if fleet is not None:
        from repro.resilience.fleet import fleet_dir

        run_dir = fleet_dir(args.journal_dir, fleet.run_id)

        def snap():
            try:
                return fleet_samples(
                    run_dir, run_id=fleet.run_id, command=command
                )
            except ReproError:
                # scraped before the workers created the run directory:
                # serve the still-zero telemetry instead of a 500
                return telemetry_samples(
                    fleet.telemetry, run_id=fleet.run_id, command=command
                )

        return snap
    tele = resilience.telemetry
    run_id = resilience.journal.run_id if resilience.journal else None

    def snap():
        return telemetry_samples(
            tele,
            cache_stats=cache.stats() if cache is not None else None,
            run_id=run_id,
            command=command,
            jobs_total=jobs_total,
            flight_dumps=_pool_flight_dumps(args, resilience),
        )

    return snap


def _metrics_server(
    args: argparse.Namespace, *, command: str, fleet=None, resilience=None,
    cache=None, jobs_total: int | None = None,
):
    """``--metrics-port``: a scrape endpoint alive for the run's span,
    or a no-op context manager when the flag is absent."""
    from contextlib import nullcontext

    if getattr(args, "metrics_port", None) is None:
        return nullcontext(None)
    from repro.obs import MetricsServer

    return MetricsServer(
        _metrics_snapshot(
            args, command=command, fleet=fleet, resilience=resilience,
            cache=cache, jobs_total=jobs_total,
        ),
        port=args.metrics_port,
    )


def _write_metrics_sidecar(
    args: argparse.Namespace, *, command: str, fleet=None, resilience=None,
    cache=None, jobs_total: int | None = None,
) -> None:
    """Write the ``--metrics`` exposition sidecar at the end of a run."""
    if not getattr(args, "metrics", None):
        return
    if fleet is None and resilience is None:
        print(
            "note: --metrics needs the scheduler; add --jobs, --fleet, "
            "or a resilience flag",
            file=sys.stderr,
        )
        return
    from repro.obs import write_metrics_text

    samples = _metrics_snapshot(
        args, command=command, fleet=fleet, resilience=resilience,
        cache=cache, jobs_total=jobs_total,
    )()
    print(f"metrics written to {write_metrics_text(args.metrics, samples)}")


def _write_run_trace(
    args: argparse.Namespace, *, resilience=None, fleet=None
) -> None:
    """``--trace`` under supervision: stitch the trace from the run's
    journal(s) — per-worker lanes for fleet runs, a synthetic span tree
    for journaled pool runs — instead of an in-process profiler."""
    if not getattr(args, "trace", None):
        return
    if fleet is not None:
        from repro.obs import write_fleet_trace
        from repro.resilience.fleet import fleet_dir

        path = write_fleet_trace(
            fleet_dir(args.journal_dir, fleet.run_id), args.trace
        )
        print(f"stitched fleet trace written to {path}")
    elif resilience is not None and resilience.journal is not None:
        from repro.obs import write_journal_trace

        path = write_journal_trace(resilience.journal.path, args.trace)
        print(f"journal trace written to {path}")
    else:
        print(
            "note: --trace under supervision needs a run journal; "
            "drop --no-journal",
            file=sys.stderr,
        )


def cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        [cls.name, cls.category, cls.paper_speedup, cls.default_system.gpu.name]
        for cls in ALL_BENCHMARKS
    ]
    print(
        render_table(
            ["benchmark", "guideline", "paper speedup", "default GPU"],
            rows,
            title="CUDAMicroBench microbenchmarks",
        )
    )
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    cache = None
    resilience = None
    fleet = _make_fleet(args, command="table1")
    with _backend_scope(args):
        if args.jobs > 1 or fleet is not None or _resilience_requested(args):
            from repro.sched import parallel_suite

            cache = _make_cache(args)
            if fleet is not None:
                resilience = _fleet_resilience(fleet)
            else:
                resilience = _make_resilience(args, command="table1")
            try:
                with _sigterm_as_interrupt(), _metrics_server(
                    args, command="table1", fleet=fleet,
                    resilience=resilience, cache=cache,
                    jobs_total=len(ALL_BENCHMARKS),
                ) as metrics_srv:
                    if metrics_srv is not None:
                        print(
                            f"metrics: serving on {metrics_srv.url}",
                            file=sys.stderr,
                        )
                    report = parallel_suite(
                        jobs=args.jobs, cache=cache,
                        resilience=None if fleet is not None else resilience,
                        fleet=fleet,
                    )
            except KeyboardInterrupt:
                return _interrupted(resilience, fleet)
        else:
            if getattr(args, "metrics_port", None) is not None:
                print(
                    "note: --metrics-port needs the scheduler; add "
                    "--jobs, --fleet, or a resilience flag",
                    file=sys.stderr,
                )
            report = run_suite()
    if _resume_noop(args, resilience):
        _print_resume_noop(args, resilience)
        _write_sched_stats(
            args, cache, benchmark="table1", jobs=args.jobs,
            resilience=resilience,
        )
        _write_metrics_sidecar(
            args, command="table1", fleet=fleet, resilience=resilience,
            cache=cache, jobs_total=len(ALL_BENCHMARKS),
        )
        _write_run_trace(args, resilience=resilience, fleet=fleet)
        return _sched_status(0 if report.all_verified else 1, resilience)
    print(report.render())
    if args.out:
        from repro.prof import write_metrics

        doc = report.as_dict()
        doc.update(_execution_section(resilience))
        print(f"table written to {write_metrics(args.out, doc)}")
    _write_sched_stats(
        args, cache, benchmark="table1", jobs=args.jobs, resilience=resilience
    )
    _write_metrics_sidecar(
        args, command="table1", fleet=fleet, resilience=resilience,
        cache=cache, jobs_total=len(ALL_BENCHMARKS),
    )
    _write_run_trace(args, resilience=resilience, fleet=fleet)
    return _sched_status(0 if report.all_verified else 1, resilience)


def _profiled(args: argparse.Namespace):
    """Context manager for commands with ``--trace``/``--json``/``--ndjson``:
    a profiling session when any export was requested, a no-op otherwise."""
    from contextlib import nullcontext

    if getattr(args, "trace", None) or getattr(args, "json", None) or getattr(
        args, "ndjson", None
    ):
        from repro.prof import profile_session

        return profile_session()
    return nullcontext(None)


def _export_profile(prof, args: argparse.Namespace, benchmark: str, params) -> None:
    """Write whichever of --trace/--json/--ndjson were requested."""
    if prof is None:
        return
    if getattr(args, "trace", None):
        path = prof.write_chrome_trace(args.trace)
        print(f"chrome trace written to {path}")
    if getattr(args, "ndjson", None):
        path = prof.write_ndjson(args.ndjson)
        print(f"ndjson log written to {path}")
    if getattr(args, "json", None):
        from repro.prof import write_metrics

        doc = prof.metrics(benchmark=benchmark, params=params)
        path = write_metrics(args.json, doc)
        print(f"metrics written to {path}")


def cmd_run(args: argparse.Namespace) -> int:
    params = _parse_params(args.param)
    resilience = None
    if _resilience_requested(args):
        if args.json or args.ndjson:
            print(
                "note: --json/--ndjson are not collected when a run is "
                "supervised; rerun without resilience flags to profile "
                "(--trace is stitched from the run journal instead)",
                file=sys.stderr,
            )
        from repro.core.base import BenchResult
        from repro.exec import current_backend_name
        from repro.sched import JobSpec, run_jobs

        resilience = _make_resilience(args, command="run")
        spec = JobSpec(
            benchmark=args.benchmark,
            params=params,
            system=args.system,
            backend=current_backend_name(getattr(args, "backend", None)),
        )
        try:
            with _sigterm_as_interrupt():
                payloads = run_jobs([spec], resilience=resilience)
        except KeyboardInterrupt:
            return _interrupted(resilience)
        result = BenchResult.from_dict(payloads[0]["result"])
        prof = None
    else:
        system = get_system(args.system) if args.system else None
        with _backend_scope(args):
            bench = get_benchmark(args.benchmark, system)
            with _profiled(args) as prof:
                result = bench.run(**params)
    print(result)
    if result.metrics:
        print("metrics:")
        for k, v in result.metrics.items():
            print(f"  {k}: {v:.6g}")
    if result.notes:
        print(result.notes)
    _export_profile(prof, args, args.benchmark, params)
    if resilience is not None:
        _write_run_trace(args, resilience=resilience)
    return _sched_status(0 if result.verified else 1, resilience)


def cmd_sweep(args: argparse.Namespace) -> int:
    values = (
        [int(v, 0) for v in args.values.split(",")] if args.values else None
    )
    params = _parse_params(args.param)
    cache = None
    resilience = None
    fleet = _make_fleet(args, command="sweep")
    if args.jobs > 1 or fleet is not None or _resilience_requested(args):
        if values is None:
            raise SystemExit(
                "--jobs, --fleet/--join, and the resilience flags need "
                "explicit --values to decompose the sweep into jobs"
            )
        if args.json or args.ndjson:
            print(
                "note: --json/--ndjson only observe the parent process; "
                "worker activity is not profiled under --jobs (--trace "
                "is stitched from the run journal instead)",
                file=sys.stderr,
            )
        from repro.sched import parallel_sweep

        cache = _make_cache(args)
        if fleet is not None:
            resilience = _fleet_resilience(fleet)
        else:
            resilience = _make_resilience(args, command="sweep")
        try:
            with _sigterm_as_interrupt(), _metrics_server(
                args, command="sweep", fleet=fleet, resilience=resilience,
                cache=cache, jobs_total=len(values),
            ) as metrics_srv:
                if metrics_srv is not None:
                    print(
                        f"metrics: serving on {metrics_srv.url}",
                        file=sys.stderr,
                    )
                sweep = parallel_sweep(
                    args.benchmark,
                    values,
                    params=params,
                    system=args.system,
                    backend=getattr(args, "backend", None),
                    jobs=args.jobs,
                    cache=cache,
                    resilience=None if fleet is not None else resilience,
                    fleet=fleet,
                )
        except KeyboardInterrupt:
            return _interrupted(resilience, fleet)
        prof = None
    else:
        if getattr(args, "metrics_port", None) is not None:
            print(
                "note: --metrics-port needs the scheduler; add --jobs, "
                "--fleet, or a resilience flag",
                file=sys.stderr,
            )
        system = get_system(args.system) if args.system else None
        with _backend_scope(args):
            bench = get_benchmark(args.benchmark, system)
            with _profiled(args) as prof:
                sweep = bench.sweep(values, **params)
    if _resume_noop(args, resilience):
        _print_resume_noop(args, resilience)
        _write_sched_stats(
            args, cache, benchmark=args.benchmark, jobs=args.jobs,
            resilience=resilience,
        )
        _write_metrics_sidecar(
            args, command="sweep", fleet=fleet, resilience=resilience,
            cache=cache, jobs_total=len(values) if values else None,
        )
        _write_run_trace(args, resilience=resilience, fleet=fleet)
        return _sched_status(0, resilience)
    print(sweep.render())
    if args.out:
        from repro.prof import write_metrics

        doc = {
            "schema": "repro-prof-bench/1",
            "benchmark": args.benchmark,
            "params": params,
            "sweep": sweep.as_dict(),
        }
        doc.update(_execution_section(resilience))
        print(f"sweep results written to {write_metrics(args.out, doc)}")
    _write_sched_stats(
        args, cache, benchmark=args.benchmark, jobs=args.jobs,
        resilience=resilience,
    )
    _write_metrics_sidecar(
        args, command="sweep", fleet=fleet, resilience=resilience,
        cache=cache, jobs_total=len(values) if values else None,
    )
    _export_profile(prof, args, args.benchmark, params)
    if prof is None and (fleet is not None or resilience is not None):
        _write_run_trace(args, resilience=resilience, fleet=fleet)
    return _sched_status(0, resilience)


def cmd_specs(_args: argparse.Namespace) -> int:
    from repro.arch.presets import get_gpu

    rows = []
    for name in list_gpus():
        g = get_gpu(name)
        rows.append(
            [
                g.name,
                f"{g.compute_capability[0]}.{g.compute_capability[1]}",
                g.sm_count,
                f"{g.clock_hz / 1e9:.2f}",
                f"{g.dram_bandwidth / 1e9:.0f}",
                f"{g.l2_size // 1024 // 1024} MiB",
                "yes" if g.global_loads_cached_in_l1 else "no",
            ]
        )
    print(
        render_table(
            ["GPU", "CC", "SMs", "GHz", "GB/s", "L2", "L1 for loads"],
            rows,
            title="preset architectures",
        )
    )
    return 0


def cmd_doctor(args: argparse.Namespace) -> int:
    """Run a benchmark and print the performance doctor's findings.

    The run is profiled, its metrics document is built, and the doctor
    rules run over the *exported* per-kernel blocks — the same path an
    external tool would take over a saved metrics JSON.  Exits 1 if any
    finding is critical — usable as a CI gate.
    """
    from repro.host.doctor import diagnose_metrics
    from repro.prof import collect_metrics, merge_metrics, profile_session

    system = get_system(args.system) if args.system else None
    bench = get_benchmark(args.benchmark, system)
    with profile_session() as prof:
        bench.run(**_parse_params(args.param))
    docs = [
        collect_metrics(rt, benchmark=args.benchmark) for rt in prof.runtimes
    ]
    findings = []
    if docs:
        doc = merge_metrics(docs)
        for name, entry in doc["kernels"].items():
            findings.extend(diagnose_metrics(entry, doc["gpu"]))
    if not findings:
        print(f"{args.benchmark}: no findings")
        return 0
    print(f"{args.benchmark}: {len(findings)} finding(s)")
    for f in findings:
        print(f"  {f}")
    return 1 if any(f.severity == "critical" for f in findings) else 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run a benchmark under the profiler and export its activity.

    Writes the per-benchmark metrics JSON (default:
    ``benchmarks/results/PROF_<benchmark>.json``) plus any requested
    Chrome trace / NDJSON log, and prints the roofline classification.
    """
    from repro.prof import profile_session, render_roofline, write_metrics
    from repro.prof.roofline import classify_kernel
    from repro.timing.model import estimate_kernel_time

    system = get_system(args.system) if args.system else None
    params = _parse_params(args.param)
    with _backend_scope(args):
        bench = get_benchmark(args.benchmark, system)
        with profile_session() as prof:
            result = bench.run(**params)
    print(result)

    doc = prof.metrics(benchmark=args.benchmark, params=params)
    out = Path(args.json) if args.json else (
        Path("benchmarks/results") / f"PROF_{args.benchmark}.json"
    )
    path = write_metrics(out, doc)
    print(f"metrics written to {path}")
    if args.trace:
        print(f"chrome trace written to {prof.write_chrome_trace(args.trace)}")
    if args.ndjson:
        print(f"ndjson log written to {prof.write_ndjson(args.ndjson)}")

    points = []
    for rt in prof.runtimes:
        seen = set()
        for stats, _ in rt.kernel_log:
            if stats.name in seen:
                continue
            seen.add(stats.name)
            timing = estimate_kernel_time(stats, rt.gpu, launch_kind="none")
            points.append(classify_kernel(
                stats,
                rt.gpu,
                exec_s=timing.exec_s,
                dram_bytes=timing.traffic.dram_bytes if timing.traffic else None,
            ))
    if points:
        print()
        print(render_roofline(points, title=f"roofline: {args.benchmark}"))
    n_kernels = len(doc["kernels"])
    n_records = len(prof.records)
    print(f"\n{n_kernels} kernel(s), {n_records} activity record(s) collected")
    return 0


def cmd_prof_diff(args: argparse.Namespace) -> int:
    """Compare two metrics documents; exit 1 on regression.

    With ``--claims`` the paper-claim specs are evaluated against the
    *after* document and failures count as regressions — absolute
    thresholds alongside the relative before/after ones.
    """
    from repro.prof import diff_metrics, load_metrics

    claim_specs = None
    if args.claims:
        from repro.check import load_claims

        claim_specs = load_claims(args.claims)
    before = load_metrics(args.before)
    after = load_metrics(args.after)
    report = diff_metrics(
        before,
        after,
        time_tolerance=args.time_tolerance,
        metric_tolerance=args.metric_tolerance,
        before_label=Path(args.before).name,
        after_label=Path(args.after).name,
        claim_specs=claim_specs,
        allow_backend_mismatch=args.allow_backend_mismatch,
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_check(args: argparse.Namespace) -> int:
    """Run the paper-claims conformance pass; exit 1 on any failure.

    Live mode (``--all`` or benchmark names) re-runs each claimed
    comparison under the profiler per backend, evaluates the claim
    files, audits the exported metrics against the invariant registry,
    and runs the metamorphic relations.  Offline mode (``--doc``)
    audits saved documents instead: structural validation, kernel/
    result invariants, and result-level claims at matching parameters.
    """
    from repro.check import (
        ConformanceReport,
        check_all,
        check_document,
        evaluate_claims_on_document,
        load_claims_dir,
    )

    resilience = None
    if args.doc:
        from repro.prof import load_metrics

        specs = load_claims_dir(args.claims_dir)
        report = ConformanceReport(title="conformance audit of saved documents")
        for doc_path in args.doc:
            doc = load_metrics(doc_path)
            subject = Path(doc_path).stem
            report.extend(check_document(doc, subject=subject))
            report.extend(
                evaluate_claims_on_document(
                    specs.values(), doc, quick=args.quick
                )
            )
    else:
        if not args.benchmarks and not args.all:
            raise ReproError(
                "nothing to check: name benchmarks, or pass --all / --doc"
            )
        resilience = (
            _make_resilience(args, command="check")
            if _resilience_requested(args)
            else None
        )
        try:
            with _sigterm_as_interrupt():
                report = check_all(
                    benchmarks=args.benchmarks or None,
                    claims_dir=args.claims_dir,
                    backend=args.backend,
                    quick=args.quick,
                    relations=not args.no_relations,
                    system=args.system,
                    resilience=resilience,
                )
        except KeyboardInterrupt:
            return _interrupted(resilience)
    print(report.render())
    if args.json:
        path = report.write_json(args.json)
        print(f"conformance report written to {path}")
    return _sched_status(0 if report.ok else 1, resilience)


def cmd_prof_roofline(args: argparse.Namespace) -> int:
    """Print the roofline table stored in a metrics document."""
    from repro.prof import load_metrics

    doc = load_metrics(args.metrics)
    rows = []
    for name, entry in sorted(doc.get("kernels", {}).items()):
        roof = entry.get("roofline")
        if not roof:
            continue
        inten = roof["intensity_ops_per_byte"]
        rows.append([
            name,
            "inf" if inten == float("inf") else f"{inten:.3f}",
            f"{roof['ridge_ops_per_byte']:.3f}",
            roof["bound"],
            f"{roof['attained_ops_per_s'] / 1e9:.2f}",
            f"{roof['roof_ops_per_s'] / 1e9:.2f}",
            f"{roof['roof_efficiency']:.0%}",
        ])
    if not rows:
        print("no roofline data in document (timing was not included)")
        return 0
    print(render_table(
        ["kernel", "ops/byte", "ridge", "bound", "Gops/s", "roof", "of roof"],
        rows,
        title=f"roofline: {doc.get('benchmark') or Path(args.metrics).name}",
    ))
    return 0


def cmd_sanitize(args: argparse.Namespace) -> int:
    """Run a benchmark or demo under the compute-sanitizer analog.

    ``target`` is a Table I benchmark name or a demo from
    :mod:`repro.sanitize.demos`.  Exits 1 on any critical finding,
    2 if the run itself died on a runtime error.
    """
    from repro.faults import FaultPlan
    from repro.host.runtime import CudaLite
    from repro.sanitize import Sanitizer, sanitize_session
    from repro.sanitize.demos import DEMOS, run_demo

    plan = None
    if (
        args.fault_seed is not None
        or args.h2d_fail_prob
        or args.d2h_fail_prob
        or args.corrupt_prob
        or args.abort_at is not None
        or args.alloc_fail_after is not None
        or args.stall_every is not None
    ):
        plan = FaultPlan(
            args.fault_seed or 0,
            alloc_fail_after_bytes=args.alloc_fail_after,
            h2d_fail_prob=args.h2d_fail_prob,
            d2h_fail_prob=args.d2h_fail_prob,
            corrupt_prob=args.corrupt_prob,
            kernel_abort_at=args.abort_at,
            max_transfer_failures=args.max_transfer_failures,
            stall_every=args.stall_every,
        )
    san = Sanitizer(args.tool)
    status = 0
    with sanitize_session(
        sanitizer=san, faults=plan, watchdog_cycles=args.watchdog
    ) as session:
        try:
            if args.target in DEMOS:
                rt = CudaLite()
                run_demo(args.target, rt, **_parse_params(args.param))
            else:
                system = get_system(args.system) if args.system else None
                bench = get_benchmark(args.target, system)
                bench.run(**_parse_params(args.param))
        except ReproError as exc:
            print(f"run aborted: {exc}", file=sys.stderr)
            status = 2
    print(san.report().render())
    fault_logs = [rt.fault_log for rt in session.runtimes if rt.fault_log.events]
    for log in fault_logs:
        print(log.render())
    if status == 0 and not san.report().ok:
        status = 1
    return status


def cmd_top(args: argparse.Namespace) -> int:
    """Live read-only view of a fleet run (``repro top <run-id>``).

    Scans the shared coordination directory with the same torn-tolerant
    readers the merge uses and never writes anything, so watching a run
    cannot change its merged result (the CLI tests assert the merged
    document is byte-identical with and without a monitor attached).
    Refreshes every ``--interval`` seconds until the run has no jobs
    left; ``--once`` prints a single snapshot and exits.
    """
    import time

    from repro.obs import fleet_status, render_fleet_status
    from repro.resilience.fleet import fleet_dir

    run_dir = fleet_dir(args.journal_dir, args.run_id)
    ttl = args.lease_ttl if args.lease_ttl is not None else 5.0
    try:
        while True:
            status = fleet_status(run_dir, ttl_s=ttl)
            if not args.once and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            print(render_fleet_status(status))
            if args.once:
                return 0
            if status["jobs_total"] and not status["jobs_remaining"]:
                print("run complete")
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _age(seconds: float) -> str:
    """A compact human age like ``3d4h`` / ``12m`` for journal listings."""
    seconds = max(0.0, seconds)
    days, rem = divmod(int(seconds), 86400)
    hours, rem = divmod(rem, 3600)
    minutes = rem // 60
    if days:
        return f"{days}d{hours}h"
    if hours:
        return f"{hours}h{minutes}m"
    return f"{minutes}m"


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the benchmark-as-a-service daemon until SIGTERM/SIGINT.

    SIGTERM triggers the graceful drain: intake flips to 503, in-flight
    requests finish (journals flush per checkpoint), queued requests
    stay durable on disk, and the listening socket closes cleanly.
    Exit 0 when the queue drained empty, 4 when accepted work remains
    for the next incarnation (the "interrupted; journal saved" code).
    """
    import signal
    import threading

    from repro.serve import ServeDaemon

    daemon = ServeDaemon(
        args.data_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        jobs=args.jobs,
        max_queue=args.max_queue,
        max_per_client=args.max_per_client,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        lease_ttl_s=args.lease_ttl if args.lease_ttl is not None else 30.0,
        cache=_make_cache(args),
    )
    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    for name in ("SIGTERM", "SIGINT"):
        if hasattr(signal, name):
            signal.signal(getattr(signal, name), _on_signal)

    daemon.start()
    rec = daemon.recovery
    print(
        f"serve: listening on {daemon.url} (data dir {args.data_dir})",
        file=sys.stderr,
    )
    if rec is not None and rec.requests:
        print(
            f"serve: recovered {rec.requests} request(s): "
            f"{rec.requeued} requeued, {rec.releases} re-leased, "
            f"{rec.completed} already complete",
            file=sys.stderr,
        )
    stop.wait()
    print("serve: draining...", file=sys.stderr)
    code = daemon.drain(grace_s=args.drain_grace)
    pending = "clean" if code == 0 else "work remains; restart to resume"
    print(
        f"serve: drained in {daemon.drain_duration_s:.2f}s ({pending})",
        file=sys.stderr,
    )
    return code


def cmd_cache_gc(args: argparse.Namespace) -> int:
    from repro.sched import gc_cache

    max_bytes = None
    if args.max_bytes is not None:
        max_bytes = _parse_size(args.max_bytes)
    summary = gc_cache(
        args.cache_dir,
        older_than_days=args.older_than,
        max_bytes=max_bytes,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"{verb} {len(summary['removed'])} entr(ies) "
        f"({summary['removed_bytes']} bytes), kept {summary['kept']} "
        f"({summary['kept_bytes']} bytes)"
    )
    by_reason: dict[str, int] = {}
    for entry in summary["removed"]:
        by_reason[entry["reason"]] = by_reason.get(entry["reason"], 0) + 1
    for reason, n in sorted(by_reason.items()):
        print(f"  {n} by {reason}")
    if not args.dry_run and summary["tmp_files_removed"]:
        print(f"swept {summary['tmp_files_removed']} tmp file(s)")
    return 0


def _parse_size(text: str) -> int:
    """Parse '64M'/'1G'/'4096' size arguments for ``cache gc``."""
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    t = text.strip().lower().rstrip("ib")
    if t and t[-1] in units:
        try:
            return int(float(t[:-1]) * units[t[-1]])
        except ValueError:
            pass
    try:
        return int(t)
    except ValueError:
        raise ReproError(
            f"cannot parse size {text!r}; use bytes or K/M/G suffixes"
        ) from None


def cmd_journal_ls(args: argparse.Namespace) -> int:
    import time

    from repro.resilience import list_runs

    runs = list_runs(args.journal_dir)
    if not runs:
        print(f"no journaled runs under {args.journal_dir}")
        return 0
    now = time.time()
    print(f"{'RUN':<14} {'KIND':<6} {'COMMAND':<8} {'JOBS':>6}  AGE")
    for entry in runs:
        jobs = str(entry["jobs"])
        if entry.get("total"):
            jobs = f"{entry['jobs']}/{entry['total']}"
        print(
            f"{entry['run_id']:<14} {entry['kind']:<6} "
            f"{entry['command'] or '-':<8} {jobs:>6}  "
            f"{_age(now - entry['mtime'])}"
        )
    return 0


def cmd_journal_show(args: argparse.Namespace) -> int:
    from repro.obs import (
        list_flight_dumps,
        read_flight_dump,
        read_journal_entries,
        trace_id_for_run,
    )
    from repro.resilience import list_runs
    from repro.resilience.fleet import fleet_dir

    root = Path(args.journal_dir)
    entry = next(
        (e for e in list_runs(root) if e["run_id"] == args.run_id), None
    )
    if entry is None:
        raise ReproError(
            f"no journaled run {args.run_id!r} under {root}; "
            "see 'repro journal ls'"
        )
    filtering = bool(args.trace or args.span)

    def matches(meta: dict[str, Any]) -> bool:
        if args.trace and not str(
            meta.get("trace_id") or ""
        ).startswith(args.trace):
            return False
        if args.span and not str(
            meta.get("span_id") or ""
        ).startswith(args.span):
            return False
        return True

    def show_flight_dumps(dump_dir: Path) -> None:
        dumps = list_flight_dumps(dump_dir)
        if not dumps:
            return
        print(f"  flight dumps ({len(dumps)}):")
        for p in dumps:
            try:
                doc = read_flight_dump(p)
            except (OSError, ValueError):
                print(f"    {p.name}  <unreadable>")
                continue
            print(
                f"    {p.name}  reason={doc.get('reason', '?')} "
                f"records={len(doc.get('records') or [])} "
                f"dropped={doc.get('dropped', 0)}"
            )

    if entry["kind"] == "run":
        header, entries = read_journal_entries(Path(entry["path"]))
        print(
            f"run {args.run_id}: command={header.get('command', '-')} "
            f"jobs={len(entries)} trace={trace_id_for_run(args.run_id)}"
        )
        shown = 0
        for e in entries:
            meta = e.get("meta") or {}
            if not matches(meta):
                continue
            shown += 1
            kind = (e.get("payload") or {}).get("kind", "?")
            bench = meta.get("benchmark") or "?"
            span = (meta.get("span_id") or "-")[:16]
            print(f"  {e['job'][:16]}  {kind:<6} {bench:<14} span={span}")
        if filtering:
            print(f"  {shown}/{len(entries)} job(s) matched")
        show_flight_dumps(root / "flightrec" / args.run_id)
        return 0
    run_dir = fleet_dir(root, args.run_id)
    import json as _json

    manifest = _json.loads((run_dir / "manifest.json").read_text())
    total = len(manifest.get("jobs", []))
    print(
        f"fleet run {args.run_id}: command={manifest.get('command', '-')} "
        f"jobs={total} trace={trace_id_for_run(args.run_id)}"
    )
    resolved: set[str] = set()
    shown = scanned = 0
    for jf in sorted((run_dir / "journals").glob("*.ndjson")):
        _, entries = read_journal_entries(jf)
        resolved.update(e["job"] for e in entries)
        scanned += len(entries)
        if filtering:
            for e in entries:
                meta = e.get("meta") or {}
                if not matches(meta):
                    continue
                shown += 1
                bench = meta.get("benchmark") or "?"
                span = (meta.get("span_id") or "-")[:16]
                print(
                    f"  {e['job'][:16]}  {bench:<14} span={span}  "
                    f"worker={jf.stem}"
                )
        else:
            print(f"  worker {jf.stem}: {len(entries)} completed")
    if filtering:
        print(f"  {shown}/{scanned} journaled job(s) matched")
    quarantined = list((run_dir / "quarantine").glob("*.json")) if (
        run_dir / "quarantine"
    ).is_dir() else []
    leases = [
        p for p in (run_dir / "leases").glob("*")
        if p.is_file() and not p.name.endswith(".tmp")
    ] if (run_dir / "leases").is_dir() else []
    print(
        f"  completed {len(resolved)}/{total}, "
        f"quarantined {len(quarantined)}, live leases {len(leases)}"
    )
    if len(resolved) < total:
        print(f"  finish with: repro <command> ... --join {args.run_id}")
    show_flight_dumps(run_dir / "flightrec")
    return 0


def cmd_journal_gc(args: argparse.Namespace) -> int:
    from repro.resilience import gc_runs

    summary = gc_runs(
        args.journal_dir,
        older_than_days=args.older_than,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"{verb} {len(summary['removed'])} run(s), kept {summary['kept']}"
    )
    for entry in summary["removed"]:
        print(f"  {entry['run_id']} ({entry['kind']})")
    if not args.dry_run:
        print(
            f"swept {summary['stale_leases_evicted']} stale lease(s), "
            f"{summary['steal_remnants_removed']} steal remnant(s), "
            f"{summary['tmp_files_removed']} tmp file(s), "
            f"{summary['flight_dump_dirs_removed']} flight-dump dir(s)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="CUDAMicroBench reproduction: simulated GPU microbenchmarks",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def add_backend_flag(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--backend",
            choices=("reference", "fast", "jit"),
            help="memory-analysis execution backend (default: reference, "
            "or the REPRO_BACKEND environment variable)",
        )

    def add_sched_flags(sp: argparse.ArgumentParser) -> None:
        from repro.sched import DEFAULT_CACHE_DIR

        sp.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for the sweep scheduler (default 1 = serial)",
        )
        sp.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the content-addressed result cache",
        )
        sp.add_argument(
            "--cache-dir",
            default=DEFAULT_CACHE_DIR,
            help=f"result-cache directory (default {DEFAULT_CACHE_DIR})",
        )
        sp.add_argument(
            "--stats", help="write scheduler/cache statistics JSON here"
        )

    def add_resilience_flags(sp: argparse.ArgumentParser) -> None:
        from repro.resilience import DEFAULT_JOURNAL_DIR

        sp.add_argument(
            "--max-retries", type=int, default=None, metavar="N",
            help="retries per failing job before it is quarantined "
            "(default 2)",
        )
        sp.add_argument(
            "--job-timeout", type=float, default=None, metavar="SECONDS",
            help="wall-clock budget per job; a job past it is killed and "
            "retried",
        )
        sp.add_argument(
            "--resume", metavar="RUN_ID",
            help="resume an interrupted run from its journal, skipping "
            "already-completed jobs",
        )
        sp.add_argument(
            "--run-id", metavar="RUN_ID",
            help="journal id for this run (default: random)",
        )
        sp.add_argument(
            "--journal-dir", default=DEFAULT_JOURNAL_DIR,
            help=f"run-journal directory (default {DEFAULT_JOURNAL_DIR})",
        )
        sp.add_argument(
            "--no-journal", action="store_true",
            help="disable checkpointing (an interrupted run saves nothing)",
        )
        sp.add_argument(
            "--chaos", metavar="SPEC",
            help="deterministic scheduler fault injection, e.g. "
            "'seed=7,crash=0.4,hang=0.2,payload=0.3,max-fault-attempts=2'",
        )

    def add_fleet_flags(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--fleet", type=int, default=None, metavar="N",
            help="run via the work-stealing fleet: spawn N worker "
            "processes cooperating through a shared journal directory",
        )
        sp.add_argument(
            "--join", default=None, metavar="RUN_ID",
            help="become one worker of an existing fleet run (started "
            "elsewhere with --fleet or another --join) and merge when "
            "the run completes",
        )
        sp.add_argument(
            "--worker-id", default=None, metavar="ID",
            help="stable worker identity for fleet journals and leases "
            "(default: derived from pid)",
        )
        sp.add_argument(
            "--lease-ttl", type=float, default=None, metavar="SECONDS",
            help="missed-heartbeat window before another worker may "
            "steal a job lease (default 5)",
        )
        sp.add_argument(
            "--heartbeat", type=float, default=None, metavar="SECONDS",
            help="lease heartbeat interval (default: lease TTL / 3)",
        )

    def add_obs_flags(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--metrics", metavar="PATH",
            help="write a Prometheus text-format metrics sidecar here "
            "when the run finishes (scheduled runs only)",
        )
        sp.add_argument(
            "--metrics-port", type=int, default=None, metavar="PORT",
            help="serve GET /metrics live during the run on this port "
            "(0 = ephemeral; the resolved URL is printed on stderr)",
        )

    sub.add_parser("list", help="list the fourteen microbenchmarks").set_defaults(
        fn=cmd_list
    )
    table1_p = sub.add_parser("table1", help="run the full suite and print Table I")
    table1_p.add_argument("--out", help="write the Table I result document here")
    table1_p.add_argument(
        "--trace",
        help="write a Chrome trace stitched from the run journal here "
        "(journaled and fleet runs)",
    )
    add_backend_flag(table1_p)
    add_sched_flags(table1_p)
    add_resilience_flags(table1_p)
    add_fleet_flags(table1_p)
    add_obs_flags(table1_p)
    table1_p.set_defaults(fn=cmd_table1)
    sub.add_parser("specs", help="show the preset GPU architectures").set_defaults(
        fn=cmd_specs
    )

    def add_export_flags(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--trace", help="write a Chrome trace-event JSON here")
        sp.add_argument("--json", help="write the metrics document here")
        sp.add_argument("--ndjson", help="write an NDJSON activity log here")

    run_p = sub.add_parser("run", help="run one microbenchmark")
    run_p.add_argument("benchmark", help="Table I name, e.g. CoMem")
    run_p.add_argument("--system", help="carina | fornax | rtx3080")
    run_p.add_argument(
        "-p", "--param", action="append", default=[], help="key=value run parameter"
    )
    add_backend_flag(run_p)
    add_export_flags(run_p)
    add_resilience_flags(run_p)
    run_p.set_defaults(fn=cmd_run)

    sweep_p = sub.add_parser("sweep", help="regenerate a benchmark's figure sweep")
    sweep_p.add_argument("benchmark")
    sweep_p.add_argument("--system", help="carina | fornax | rtx3080")
    sweep_p.add_argument("--values", help="comma-separated sweep values")
    sweep_p.add_argument(
        "-p", "--param", action="append", default=[], help="key=value run parameter"
    )
    sweep_p.add_argument("--out", help="write the sweep result document here")
    add_backend_flag(sweep_p)
    add_sched_flags(sweep_p)
    add_resilience_flags(sweep_p)
    add_fleet_flags(sweep_p)
    add_export_flags(sweep_p)
    add_obs_flags(sweep_p)
    sweep_p.set_defaults(fn=cmd_sweep)

    journal_p = sub.add_parser(
        "journal", help="inspect and prune the run-journal directory"
    )
    jsub = journal_p.add_subparsers(dest="journal_command", required=True)

    def add_journal_dir(sp: argparse.ArgumentParser) -> None:
        from repro.resilience import DEFAULT_JOURNAL_DIR

        sp.add_argument(
            "--journal-dir", default=DEFAULT_JOURNAL_DIR,
            help=f"run-journal directory (default {DEFAULT_JOURNAL_DIR})",
        )

    jls_p = jsub.add_parser("ls", help="list journaled runs, newest first")
    add_journal_dir(jls_p)
    jls_p.set_defaults(fn=cmd_journal_ls)
    jshow_p = jsub.add_parser("show", help="show one run's journaled jobs")
    jshow_p.add_argument("run_id", help="run id as printed by journal ls")
    jshow_p.add_argument(
        "--trace", metavar="TRACE_ID",
        help="only show jobs whose trace id starts with this prefix",
    )
    jshow_p.add_argument(
        "--span", metavar="SPAN_ID",
        help="only show jobs whose span id starts with this prefix",
    )
    add_journal_dir(jshow_p)
    jshow_p.set_defaults(fn=cmd_journal_show)
    jgc_p = jsub.add_parser(
        "gc",
        help="prune old runs and always sweep stale fleet leases",
    )
    jgc_p.add_argument(
        "--older-than", type=float, default=None, metavar="DAYS",
        help="remove runs whose newest record is older than this many "
        "days (default: keep all runs, only sweep stale leases)",
    )
    jgc_p.add_argument(
        "--dry-run", action="store_true",
        help="report what would be removed without touching anything",
    )
    add_journal_dir(jgc_p)
    jgc_p.set_defaults(fn=cmd_journal_gc)

    from repro.sched import DEFAULT_CACHE_DIR as _DEFAULT_CACHE

    serve_p = sub.add_parser(
        "serve",
        help="run the crash-tolerant benchmark-as-a-service daemon",
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_p.add_argument(
        "--port", type=int, default=8321,
        help="listen port; 0 = ephemeral (default 8321)",
    )
    serve_p.add_argument(
        "--data-dir", default=".repro-serve",
        help="durable queue directory: intake journal, request state, "
        "results, per-request run journals (default .repro-serve)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=2,
        help="request worker threads (default 2)",
    )
    serve_p.add_argument(
        "--jobs", type=int, default=1,
        help="scheduler worker processes per request (default 1)",
    )
    serve_p.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="accepted-but-unclaimed bound; past it submissions get "
        "429 + Retry-After (default 64)",
    )
    serve_p.add_argument(
        "--max-per-client", type=int, default=None, metavar="N",
        help="queued+running cap per X-Client-Id (default 8)",
    )
    serve_p.add_argument(
        "--breaker-threshold", type=int, default=None, metavar="N",
        help="consecutive failures before a benchmark's circuit opens "
        "(default 3)",
    )
    serve_p.add_argument(
        "--breaker-cooldown", type=float, default=None, metavar="SECONDS",
        help="open-circuit cool-down before a half-open probe "
        "(default 30)",
    )
    serve_p.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="execution-lease staleness bound (default 30)",
    )
    serve_p.add_argument(
        "--drain-grace", type=float, default=30.0, metavar="SECONDS",
        help="how long a SIGTERM drain waits for in-flight requests "
        "before leaving them for restart recovery (default 30)",
    )
    serve_p.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed result cache",
    )
    serve_p.add_argument(
        "--cache-dir", default=_DEFAULT_CACHE,
        help=f"result-cache directory (default {_DEFAULT_CACHE})",
    )
    serve_p.set_defaults(fn=cmd_serve)

    cache_p = sub.add_parser(
        "cache", help="inspect and prune the result cache"
    )
    csub = cache_p.add_subparsers(dest="cache_command", required=True)
    cgc_p = csub.add_parser(
        "gc",
        help="bound the cache by age and/or total size "
        "(content-addressed entries: eviction only costs a recompute)",
    )
    cgc_p.add_argument(
        "--older-than", type=float, default=None, metavar="DAYS",
        help="remove entries not (re)stored within this many days",
    )
    cgc_p.add_argument(
        "--max-bytes", default=None, metavar="SIZE",
        help="then evict oldest-first until the total fits (bytes, or "
        "K/M/G suffixes)",
    )
    cgc_p.add_argument(
        "--dry-run", action="store_true",
        help="report what would be removed without touching anything",
    )
    cgc_p.add_argument(
        "--cache-dir", default=_DEFAULT_CACHE,
        help=f"result-cache directory (default {_DEFAULT_CACHE})",
    )
    cgc_p.set_defaults(fn=cmd_cache_gc)

    top_p = sub.add_parser(
        "top", help="live read-only view of a running fleet"
    )
    top_p.add_argument("run_id", help="fleet run id (see 'journal ls')")
    top_p.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval (default 2)",
    )
    top_p.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit instead of refreshing",
    )
    top_p.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="staleness threshold for worker health (default 5)",
    )
    add_journal_dir(top_p)
    top_p.set_defaults(fn=cmd_top)

    profile_p = sub.add_parser(
        "profile", help="run one microbenchmark under the profiler"
    )
    profile_p.add_argument("benchmark", help="Table I name, e.g. WarpDivRedux")
    profile_p.add_argument("--system", help="carina | fornax | rtx3080")
    profile_p.add_argument(
        "-p", "--param", action="append", default=[], help="key=value run parameter"
    )
    add_backend_flag(profile_p)
    add_export_flags(profile_p)
    profile_p.set_defaults(fn=cmd_profile)

    prof_p = sub.add_parser("prof", help="analyze saved metrics documents")
    prof_sub = prof_p.add_subparsers(dest="prof_command", required=True)
    diff_p = prof_sub.add_parser(
        "diff", help="compare two metrics JSONs; exit 1 on regression"
    )
    diff_p.add_argument("before", help="baseline metrics JSON")
    diff_p.add_argument("after", help="candidate metrics JSON")
    diff_p.add_argument(
        "--time-tolerance",
        type=float,
        default=0.10,
        help="relative time-growth threshold (default 0.10 = +10%%)",
    )
    diff_p.add_argument(
        "--metric-tolerance",
        type=float,
        default=0.05,
        help="absolute efficiency-drop threshold (default 0.05)",
    )
    diff_p.add_argument(
        "--claims",
        help="claim file or directory; claims failing on the after "
        "document count as regressions",
    )
    diff_p.add_argument(
        "--allow-backend-mismatch",
        action="store_true",
        help="diff documents produced by different execution backends "
        "anyway (refused by default: a backend change is not a "
        "performance delta)",
    )
    diff_p.set_defaults(fn=cmd_prof_diff)
    roof_p = prof_sub.add_parser(
        "roofline", help="print the roofline table of a metrics JSON"
    )
    roof_p.add_argument("metrics", help="metrics JSON from `repro profile`")
    roof_p.set_defaults(fn=cmd_prof_roofline)

    check_p = sub.add_parser(
        "check",
        help="verify the paper's claims: Table I ranges, figure trends, "
        "metric invariants, metamorphic relations",
    )
    check_p.add_argument(
        "benchmarks",
        nargs="*",
        help="Table I names to check (default: none; use --all)",
    )
    check_p.add_argument(
        "--all", action="store_true", help="check every benchmark with a claim file"
    )
    check_p.add_argument(
        "--backend",
        choices=("reference", "fast", "jit", "both", "all"),
        help="execution backend(s) to check under: one name, 'both' "
        "(reference+fast, the default), or 'all' (all three)",
    )
    check_p.add_argument(
        "--quick",
        action="store_true",
        help="skip claims tagged slow = true in their claim file",
    )
    check_p.add_argument(
        "--claims-dir",
        help="claim-file directory (default benchmarks/claims)",
    )
    check_p.add_argument(
        "--doc",
        action="append",
        default=[],
        help="audit a saved metrics/results JSON instead of running live "
        "(repeatable)",
    )
    check_p.add_argument(
        "--no-relations",
        action="store_true",
        help="skip the metamorphic-relation runner",
    )
    check_p.add_argument("--system", help="carina | fornax | rtx3080")
    check_p.add_argument("--json", help="write the conformance report JSON here")
    add_resilience_flags(check_p)
    check_p.set_defaults(fn=cmd_check)

    doc_p = sub.add_parser(
        "doctor", help="diagnose a benchmark's kernels for performance bugs"
    )
    doc_p.add_argument("benchmark", help="Table I name, e.g. CoMem")
    doc_p.add_argument("--system", help="carina | fornax | rtx3080")
    doc_p.add_argument(
        "-p", "--param", action="append", default=[], help="key=value run parameter"
    )
    doc_p.set_defaults(fn=cmd_doctor)

    san_p = sub.add_parser(
        "sanitize",
        help="run under the compute-sanitizer analog, with optional fault injection",
    )
    san_p.add_argument(
        "target", help="benchmark (e.g. MemAlign) or demo (e.g. oob-write)"
    )
    san_p.add_argument(
        "--tool",
        default="all",
        choices=("all", "memcheck", "racecheck", "synccheck", "leakcheck"),
        help="sanitizer tool to enable (default: all)",
    )
    san_p.add_argument("--system", help="carina | fornax | rtx3080")
    san_p.add_argument(
        "--fault-seed", type=int, default=None, help="seed for the fault plan"
    )
    san_p.add_argument("--h2d-fail-prob", type=float, default=0.0)
    san_p.add_argument("--d2h-fail-prob", type=float, default=0.0)
    san_p.add_argument("--corrupt-prob", type=float, default=0.0)
    san_p.add_argument(
        "--abort-at", type=int, default=None, help="0-based launch ordinal to abort"
    )
    san_p.add_argument(
        "--alloc-fail-after", type=int, default=None, help="allocation byte budget"
    )
    san_p.add_argument(
        "--max-transfer-failures",
        type=int,
        default=None,
        help="cap on injected transfer failures (1 = fail once, then recover)",
    )
    san_p.add_argument(
        "--stall-every", type=int, default=None, help="stall every N-th stream op"
    )
    san_p.add_argument(
        "--watchdog", type=float, default=None, help="issue-cycle budget per kernel"
    )
    san_p.add_argument(
        "-p", "--param", action="append", default=[], help="key=value run parameter"
    )
    san_p.set_defaults(fn=cmd_sanitize)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
