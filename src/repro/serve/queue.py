"""Durable request queue: fsync'd intake journal + atomic state files.

The durability contract of ``repro serve`` is **accepted means
persisted**: a request is written — appended to the intake journal and
given a per-request state file, both flushed to disk — *before* the
202 goes back to the client, so a ``kill -9`` at any later instant
loses nothing that was acknowledged.  Layout under the data dir::

    intake.ndjson            append-only accept log (fsync per line)
    requests/<id>.json       per-request state, atomic tmp+fsync+rename
    leases/<id>.lease        execution leases (repro.resilience.lease)
    journals/<id>.ndjson     per-request run journal (checkpoint/resume)
    results/<fp>.json        finished result documents, content-addressed

The intake journal is the recovery spine: torn-tail tolerant like the
run journal (a crash mid-append leaves an unparsable last line that is
skipped — the client never got its 202, so nothing acknowledged is
lost), and sufficient on its own to rebuild a request whose state-file
write never landed.  State files carry the full request plus its
lifecycle state; they are rewritten atomically on every transition, so
a reader sees either the old state or the new one, never a torn file.

Execution claims go through the same :class:`~repro.resilience.lease.
LeaseDir` the distributed fleet uses: a worker thread (or, after a
crash, the restarted daemon's recovery pass) claims a request by
``O_EXCL``-creating its lease; a request whose lease heartbeat went
stale — the daemon was SIGKILL'd mid-job — is steal-eligible and
re-enqueued by recovery, resuming from its per-request run journal.

Idempotency rides on the same store: the queue indexes request
fingerprints, so a duplicate submission maps to the original request
id — a finished duplicate replays the stored result byte-identically,
an in-flight duplicate returns the same id to poll, and a failed or
expired duplicate re-arms the original request for another attempt.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable

from repro.common.errors import ReproError
from repro.resilience.journal import new_run_id
from repro.resilience.lease import Lease, LeaseDir
from repro.serve.request import STATES, ServeRequest, parse_request

__all__ = ["INTAKE_SCHEMA", "STATE_SCHEMA", "QueueEntry", "DurableQueue"]

INTAKE_SCHEMA = "repro-serve-intake/1"
STATE_SCHEMA = "repro-serve-state/1"

#: terminal request states (no further transitions)
_TERMINAL = ("done", "failed", "expired")


def _atomic_write_json(path: Path, doc: dict[str, Any]) -> None:
    """tmp + fsync + rename, the same publish discipline as the cache."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class QueueEntry:
    """In-memory view of one request's durable state."""

    __slots__ = (
        "id", "seq", "request", "state", "attempts", "error",
        "result_fingerprint", "submitted_at", "started_at", "finished_at",
        "events", "cond",
    )

    def __init__(self, id: str, seq: int, request: ServeRequest) -> None:
        self.id = id
        self.seq = seq
        self.request = request
        self.state = "queued"
        self.attempts = 0
        self.error: str | None = None
        self.result_fingerprint: str | None = None
        self.submitted_at: float = 0.0
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: live progress events (in-memory only; the durable record is
        #: the state file + per-request run journal)
        self.events: list[dict[str, Any]] = []
        self.cond = threading.Condition()

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    @property
    def deadline_at(self) -> float | None:
        if self.request.deadline_ms is None:
            return None
        return self.submitted_at + self.request.deadline_ms / 1000.0

    def status_doc(self) -> dict[str, Any]:
        """The ``GET /v1/jobs/<id>`` response body."""
        doc: dict[str, Any] = {
            "schema": STATE_SCHEMA,
            "id": self.id,
            "state": self.state,
            "fingerprint": self.request.fingerprint,
            "request": self.request.as_dict(),
            "client": self.request.client,
            "seq": self.seq,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
        }
        if self.started_at is not None:
            doc["started_at"] = self.started_at
        if self.finished_at is not None:
            doc["finished_at"] = self.finished_at
        if self.error is not None:
            doc["error"] = self.error
        if self.result_fingerprint is not None:
            doc["result"] = f"/v1/results/{self.result_fingerprint}"
        return doc


class DurableQueue:
    """The daemon's accepted-request store and FIFO dispatch queue.

    All mutation happens under one lock; durable writes (intake append,
    state-file replace) happen inside the mutating call, before it
    returns — the in-memory indexes are a cache over the files, never
    the other way around.  ``now`` is injectable for deterministic
    tests.
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        lease_ttl_s: float = 30.0,
        now: Callable[[], float] = time.time,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.now = now
        try:
            self.data_dir.mkdir(parents=True, exist_ok=True)
            (self.data_dir / "requests").mkdir(exist_ok=True)
            (self.data_dir / "results").mkdir(exist_ok=True)
            (self.data_dir / "journals").mkdir(exist_ok=True)
        except OSError as exc:
            raise ReproError(
                f"serve data dir {self.data_dir} is not writable: {exc}; "
                "pick another --data-dir"
            ) from None
        self.leases = LeaseDir(
            self.data_dir / "leases", ttl_s=lease_ttl_s, now=now
        )
        self._lock = threading.RLock()
        self._ready = threading.Condition(self._lock)
        self._entries: dict[str, QueueEntry] = {}
        self._by_fingerprint: dict[str, str] = {}
        self._pending: deque[str] = deque()
        self._seq = 0
        self._intake_path = self.data_dir / "intake.ndjson"
        self._intake_fh = None

    # -- intake journal -------------------------------------------------
    def _open_intake(self):
        if self._intake_fh is None:
            fresh = not self._intake_path.exists()
            self._intake_fh = self._intake_path.open("a")
            if fresh:
                self._intake_append(
                    {"schema": INTAKE_SCHEMA, "created_at": self.now()}
                )
        return self._intake_fh

    def _intake_append(self, obj: dict[str, Any]) -> None:
        fh = self._open_intake()
        fh.write(json.dumps(obj, separators=(",", ":")) + "\n")
        fh.flush()
        os.fsync(fh.fileno())

    @staticmethod
    def _read_intake(path: Path) -> list[dict[str, Any]]:
        """Parse the intake journal, skipping a torn tail."""
        entries: list[dict[str, Any]] = []
        if not path.exists():
            return entries
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    # crash mid-append: the client never got its 202
                    continue
                if "id" in obj:
                    entries.append(obj)
        return entries

    # -- state files ----------------------------------------------------
    def _state_path(self, request_id: str) -> Path:
        return self.data_dir / "requests" / f"{request_id}.json"

    def _persist(self, entry: QueueEntry) -> None:
        doc = entry.status_doc()
        doc.pop("result", None)
        if entry.result_fingerprint is not None:
            doc["result_fingerprint"] = entry.result_fingerprint
        _atomic_write_json(self._state_path(entry.id), doc)

    def _load_state(self, path: Path) -> QueueEntry | None:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if doc.get("schema") != STATE_SCHEMA:
            return None
        try:
            request = parse_request(
                doc["request"], client=doc.get("client") or None
            )
            entry = QueueEntry(doc["id"], int(doc["seq"]), request)
        except (ReproError, KeyError, TypeError, ValueError):
            return None
        # the persisted fingerprint wins over the re-derived one: it may
        # be a user Idempotency-Key, and — after a source change — it is
        # the key the original acceptance was made under
        request.fingerprint = doc.get("fingerprint", request.fingerprint)
        state = doc.get("state")
        entry.state = state if state in STATES else "queued"
        entry.attempts = int(doc.get("attempts", 0))
        entry.error = doc.get("error")
        entry.result_fingerprint = doc.get("result_fingerprint")
        entry.submitted_at = float(doc.get("submitted_at", 0.0))
        entry.started_at = doc.get("started_at")
        entry.finished_at = doc.get("finished_at")
        return entry

    # -- submission -----------------------------------------------------
    def submit(self, request: ServeRequest) -> tuple[QueueEntry, bool]:
        """Accept a request durably; returns ``(entry, duplicate)``.

        The intake line and the state file are flushed before this
        returns — the caller may acknowledge the moment it does.  A
        duplicate fingerprint maps onto the original entry: terminal
        failures and expiries are re-armed (state back to ``queued``,
        re-dispatched), anything else is returned as-is.
        """
        with self._lock:
            existing_id = self._by_fingerprint.get(request.fingerprint)
            if existing_id is not None:
                entry = self._entries[existing_id]
                if entry.state in ("failed", "expired"):
                    self._transition(entry, "queued", error=None)
                    self._pending.append(entry.id)
                    self._ready.notify()
                return entry, True
            entry = QueueEntry(new_run_id(), self._seq, request)
            self._seq += 1
            entry.submitted_at = self.now()
            self._intake_append({
                "id": entry.id,
                "seq": entry.seq,
                "fingerprint": request.fingerprint,
                "client": request.client,
                "submitted_at": entry.submitted_at,
                "request": request.as_dict(),
            })
            self._persist(entry)
            self._entries[entry.id] = entry
            self._by_fingerprint[request.fingerprint] = entry.id
            self._pending.append(entry.id)
            self._ready.notify()
            return entry, False

    # -- dispatch -------------------------------------------------------
    def claim(
        self, owner: str, *, timeout: float | None = None
    ) -> QueueEntry | None:
        """Pop the next pending request and lease it; None on timeout.

        The lease is the crash marker: held while the request executes,
        released on completion.  A daemon killed mid-execution leaves
        the lease behind; the restarted daemon's recovery pass finds
        the stale lease, steals it, and re-enqueues the request.
        """
        with self._lock:
            if not self._pending:
                self._ready.wait(timeout)
            if not self._pending:
                return None
            entry = self._entries[self._pending.popleft()]
            lease = self.leases.claim(entry.id, owner)
            if lease is None:
                # a leftover lease (e.g. crash between lease-create and
                # the state write) that is not yet stale: put the entry
                # back rather than losing it; it becomes claimable once
                # the TTL lapses
                self._pending.appendleft(entry.id)
                return None
            entry.attempts += 1
            entry.started_at = self.now()
            self._transition(entry, "running")
            return entry

    def heartbeat(self, entry: QueueEntry, owner: str) -> None:
        """Refresh the execution lease of a long-running request."""
        lease = self._read_lease(entry.id)
        if lease is not None and lease.owner == owner:
            self.leases.heartbeat(lease)

    def _read_lease(self, request_id: str) -> Lease | None:
        try:
            return self.leases.read(request_id)
        except ValueError:
            return None

    # -- transitions ----------------------------------------------------
    def _transition(
        self, entry: QueueEntry, state: str, *, error: str | None = None,
        result_fingerprint: str | None = None,
    ) -> None:
        entry.state = state
        entry.error = error
        if result_fingerprint is not None:
            entry.result_fingerprint = result_fingerprint
        if state in _TERMINAL:
            entry.finished_at = self.now()
        self._persist(entry)
        with entry.cond:
            entry.cond.notify_all()

    def _finish(
        self, entry: QueueEntry, state: str, *, error: str | None = None,
        result_fingerprint: str | None = None,
    ) -> None:
        with self._lock:
            self._transition(
                entry, state, error=error,
                result_fingerprint=result_fingerprint,
            )
            lease = self._read_lease(entry.id)
            if lease is not None:
                self.leases.release(lease)

    def complete(self, entry: QueueEntry, result_fingerprint: str) -> None:
        self._finish(entry, "done", result_fingerprint=result_fingerprint)

    def fail(self, entry: QueueEntry, error: str) -> None:
        self._finish(entry, "failed", error=error)

    def expire(self, entry: QueueEntry, error: str) -> None:
        self._finish(entry, "expired", error=error)

    def requeue(self, entry: QueueEntry) -> None:
        """Put a claimed-but-unfinished request back (drain checkpoint)."""
        with self._lock:
            lease = self._read_lease(entry.id)
            if lease is not None:
                self.leases.release(lease)
            self._transition(entry, "queued")
            self._pending.append(entry.id)
            self._ready.notify()

    # -- events ---------------------------------------------------------
    def record_event(self, entry: QueueEntry, event: dict[str, Any]) -> None:
        """Append a live progress event and wake any streaming readers."""
        with entry.cond:
            entry.events.append(event)
            entry.cond.notify_all()

    # -- lookups --------------------------------------------------------
    def get(self, request_id: str) -> QueueEntry | None:
        with self._lock:
            return self._entries.get(request_id)

    def by_fingerprint(self, fingerprint: str) -> QueueEntry | None:
        with self._lock:
            request_id = self._by_fingerprint.get(fingerprint)
            return self._entries.get(request_id) if request_id else None

    def depth(self) -> int:
        """Requests accepted but not yet claimed (the admission bound)."""
        with self._lock:
            return len(self._pending)

    def inflight(self) -> int:
        with self._lock:
            return sum(
                1 for e in self._entries.values() if e.state == "running"
            )

    def client_load(self, client: str) -> int:
        """Queued + running requests attributed to one client."""
        with self._lock:
            return sum(
                1 for e in self._entries.values()
                if e.request.client == client
                and e.state in ("queued", "running")
            )

    def counts(self) -> dict[str, int]:
        with self._lock:
            out = {state: 0 for state in STATES}
            for e in self._entries.values():
                out[e.state] += 1
            return out

    def wake_all(self) -> None:
        """Wake every blocked ``claim`` (drain) and status streamer."""
        with self._lock:
            self._ready.notify_all()
            for entry in self._entries.values():
                with entry.cond:
                    entry.cond.notify_all()

    # -- results --------------------------------------------------------
    def result_path(self, fingerprint: str) -> Path:
        return self.data_dir / "results" / f"{fingerprint}.json"

    def put_result(self, fingerprint: str, text: str) -> Path:
        """Publish a finished result document atomically.

        Content-addressed by request fingerprint: racing writers (a
        re-run after recovery that lost the completion race) carry
        identical bytes, so last-rename-wins is safe.
        """
        path = self.result_path(fingerprint)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(text)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def get_result(self, fingerprint: str) -> bytes | None:
        try:
            return self.result_path(fingerprint).read_bytes()
        except OSError:
            return None

    def close(self) -> None:
        if self._intake_fh is not None:
            self._intake_fh.close()
            self._intake_fh = None
