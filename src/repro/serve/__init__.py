"""``repro.serve`` — crash-tolerant benchmark-as-a-service.

The long-lived daemon behind ``repro serve``: run/sweep/profile/check
requests over HTTP, executed through the supervised scheduler of
:mod:`repro.sched` + :mod:`repro.resilience`, with the robustness
planes a production service needs — a durable request queue (accepted
means persisted; ``kill -9`` loses nothing), idempotency keys derived
from job fingerprints, admission control with ``429``/``Retry-After``
backpressure, request deadlines propagated into per-job timeouts,
per-benchmark circuit breakers, and graceful SIGTERM drain.

Layering::

    request.py    validation + fingerprints (the idempotency keys)
    queue.py      fsync'd intake journal + atomic state files + leases
    admission.py  queue-depth / per-client caps, Retry-After estimator
    breaker.py    per-benchmark closed/open/half-open circuits
    executor.py   one request → the same code path the CLI runs
    recovery.py   restart replays the data dir before /readyz flips
    server.py     ServeDaemon: HTTP front + worker pool + drain
    client.py     stdlib urllib client (CLI, tests, CI smoke)
"""

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.breaker import BreakerBoard, CircuitBreaker
from repro.serve.client import ServeClient, ServeRejected
from repro.serve.executor import ExecutionOutcome, execute_request
from repro.serve.queue import DurableQueue, QueueEntry
from repro.serve.recovery import RecoverySummary, recover
from repro.serve.request import (
    BadRequest,
    ServeRequest,
    parse_request,
    request_fingerprint,
)
from repro.serve.server import ServeDaemon

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BadRequest",
    "BreakerBoard",
    "CircuitBreaker",
    "DurableQueue",
    "ExecutionOutcome",
    "QueueEntry",
    "RecoverySummary",
    "ServeClient",
    "ServeDaemon",
    "ServeRejected",
    "ServeRequest",
    "execute_request",
    "parse_request",
    "recover",
    "request_fingerprint",
]
