"""Request execution: the bridge from the queue to the supervised pool.

``execute_request`` takes one claimed :class:`~repro.serve.queue.
QueueEntry` and runs it through exactly the code path the CLI uses for
the same work — ``run``/``sweep`` through
:func:`~repro.sched.runner.run_jobs` / ``parallel_sweep`` under a
:class:`~repro.resilience.supervisor.ResilienceConfig`, ``profile``
through :func:`~repro.prof.profile_session`, ``check`` through
:func:`~repro.check.check_all` — and renders the result document with
the same :func:`~repro.prof.render_metrics` serializer the CLI's
``--out`` uses.  Same decomposition + same serializer = a served
result that ``cmp``-compares byte-identical to the serial command
line, which is the recovery story's acceptance test.

Durability plumbing per request:

* a per-request :class:`~repro.resilience.journal.RunJournal` under
  ``<data-dir>/journals/<request-id>.ndjson``, ``attach``\\ ed so a
  re-execution after a crash resumes from completed checkpoints
  instead of recomputing;
* a per-request :class:`~repro.prof.activity.ActivityHub` whose
  ``sched`` records — plus one ``checkpoint`` event per journaled job
  — are forwarded to ``on_event``; the server streams them to
  ``GET /v1/jobs/<id>`` watchers as NDJSON progress;
* the request deadline threaded into the pool's per-job timeout, with
  an explicit pre-flight and post-failure deadline check so an expired
  request reports ``expired`` (HTTP 504), not a generic failure — the
  partial journal stays on disk either way.

``profile`` and ``check`` run in-process (the profiler patches ambient
execution state), serialized by a module lock so concurrent workers
cannot interleave two profiling sessions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.common.errors import ReproError
from repro.serve.queue import QueueEntry

__all__ = ["ExecutionOutcome", "execute_request"]

#: profile/check patch process-global state (the profiler's runtime
#: hooks); one at a time across all worker threads
_INPROC_LOCK = threading.Lock()


@dataclass
class ExecutionOutcome:
    """What one execution attempt produced."""

    state: str                       #: "done" | "failed" | "expired"
    text: str | None = None          #: result document (state == done)
    error: str | None = None


def _deadline_remaining(entry: QueueEntry, now: float) -> float | None:
    """Seconds left on the request deadline; None when unbounded."""
    deadline = entry.deadline_at
    if deadline is None:
        return None
    return deadline - now


def _expired(entry: QueueEntry, now: float) -> bool:
    remaining = _deadline_remaining(entry, now)
    return remaining is not None and remaining <= 0.0


def execute_request(
    entry: QueueEntry,
    *,
    data_dir: str | Path,
    cache=None,
    jobs: int = 1,
    on_event: Callable[[dict[str, Any]], None] | None = None,
    now: Callable[[], float] = time.time,
) -> ExecutionOutcome:
    """Run one claimed request to a terminal outcome.

    Never raises for request-level failures — supervision errors,
    deadline expiry, and benchmark bugs all come back as an
    :class:`ExecutionOutcome` so the worker loop stays a
    state-machine, not a try/except pyramid.
    """
    req = entry.request
    if _expired(entry, now()):
        return ExecutionOutcome(
            state="expired",
            error=f"deadline of {req.deadline_ms}ms expired before start",
        )
    try:
        if req.kind in ("run", "sweep"):
            return _execute_pooled(
                entry, data_dir=data_dir, cache=cache, jobs=jobs,
                on_event=on_event, now=now,
            )
        if req.kind == "profile":
            return _execute_profile(entry, now=now)
        return _execute_check(entry, now=now)
    except ReproError as exc:
        if _expired(entry, now()):
            return ExecutionOutcome(state="expired", error=str(exc))
        return ExecutionOutcome(state="failed", error=str(exc))
    except Exception as exc:  # noqa: BLE001 - a bug must fail the
        # request, never the worker thread that carries it
        return ExecutionOutcome(
            state="failed", error=f"{type(exc).__name__}: {exc}"
        )


# ----------------------------------------------------------------------
def _progress_hub(entry: QueueEntry, on_event):
    """A per-request ActivityHub forwarding sched records as dicts."""
    if on_event is None:
        return None
    from repro.prof.activity import ActivityHub

    hub = ActivityHub()

    def forward(rec) -> None:
        on_event({
            "event": rec.name,
            "kind": rec.kind,
            "seq": rec.seq,
            "args": dict(rec.args),
        })

    hub.subscribe(forward, kinds=("sched",))
    return hub


def _make_resilience(entry: QueueEntry, data_dir: Path, hub, now, on_event):
    from repro.resilience.journal import RunJournal
    from repro.resilience.supervisor import ResilienceConfig

    journal = RunJournal.attach(
        data_dir / "journals",
        run_id=entry.id,
        meta={
            "command": f"serve-{entry.request.kind}",
            "request": entry.id,
            "fingerprint": entry.request.fingerprint,
        },
    )
    if on_event is not None:
        # the pool's activity hub only speaks up on exceptional paths
        # (retries, timeouts, fallbacks); clean progress is the journal
        # checkpoint stream, so forward those to watchers too
        checkpoint = journal.record

        def record(fingerprint, payload, *, meta=None):
            checkpoint(fingerprint, payload, meta=meta)
            on_event({
                "event": "checkpoint", "kind": "sched", "job": fingerprint,
            })

        journal.record = record
    remaining = _deadline_remaining(entry, now())
    return ResilienceConfig(
        journal=journal,
        hub=hub,
        job_timeout_s=remaining if remaining is not None else None,
    )


def _execute_pooled(
    entry: QueueEntry, *, data_dir, cache, jobs, on_event, now
) -> ExecutionOutcome:
    from repro.core.base import BenchResult
    from repro.prof.metrics import BENCH_SCHEMA, render_metrics
    from repro.sched.runner import parallel_sweep, run_jobs

    req = entry.request
    hub = _progress_hub(entry, on_event)
    resilience = _make_resilience(entry, Path(data_dir), hub, now, on_event)
    try:
        doc: dict[str, Any]
        if req.kind == "sweep":
            sweep = parallel_sweep(
                req.benchmark,
                req.values,
                params=req.params,
                system=req.system,
                backend=req.backend,
                jobs=jobs,
                cache=cache,
                resilience=resilience,
            )
            doc = {
                "schema": BENCH_SCHEMA,
                "benchmark": req.benchmark,
                "params": req.params,
                "sweep": sweep.as_dict(),
            }
        else:
            payloads = run_jobs(
                req.job_specs(), jobs=jobs, cache=cache,
                resilience=resilience,
            )
            result = BenchResult.from_dict(payloads[0]["result"])
            doc = {
                "schema": BENCH_SCHEMA,
                "benchmark": req.benchmark,
                "params": req.params,
                "results": [result.as_dict()],
            }
        # mirror the CLI: a degraded run records how it actually ran
        tele = resilience.telemetry
        if tele.fallbacks:
            doc["execution"] = {
                "mode": tele.mode, "fallbacks": list(tele.fallbacks),
            }
        return ExecutionOutcome(state="done", text=render_metrics(doc))
    finally:
        if resilience.journal is not None:
            resilience.journal.close()


def _execute_profile(entry: QueueEntry, *, now) -> ExecutionOutcome:
    from repro.arch.presets import get_system
    from repro.core.registry import get_benchmark
    from repro.exec.dispatch import use_backend, current_backend_name
    from repro.prof import profile_session, render_metrics

    req = entry.request
    with _INPROC_LOCK:
        system = get_system(req.system) if req.system else None
        bench = get_benchmark(req.benchmark, system)
        with use_backend(current_backend_name(req.backend)):
            with profile_session() as prof:
                bench.run(**req.params)
        doc = prof.metrics(benchmark=req.benchmark, params=req.params)
    if _expired(entry, now()):
        return ExecutionOutcome(
            state="expired",
            error=f"deadline of {req.deadline_ms}ms expired during profile",
        )
    return ExecutionOutcome(state="done", text=render_metrics(doc))


def _execute_check(entry: QueueEntry, *, now) -> ExecutionOutcome:
    import json

    from repro.check import check_all

    req = entry.request
    with _INPROC_LOCK:
        report = check_all(
            benchmarks=req.benchmarks,
            backend=req.backend,
            quick=req.quick,
            system=req.system,
        )
    if _expired(entry, now()):
        return ExecutionOutcome(
            state="expired",
            error=f"deadline of {req.deadline_ms}ms expired during check",
        )
    text = json.dumps(report.as_dict(), indent=2) + "\n"
    return ExecutionOutcome(state="done", text=text)
