"""The serve API's unit of work: one validated benchmark request.

A ``POST /v1/jobs`` body is a small JSON document naming what to run::

    {"kind": "sweep", "benchmark": "MemAlign",
     "values": [262144, 524288], "params": {}, "backend": "reference",
     "deadline_ms": 30000}

``kind`` is one of ``run`` (one naive-vs-optimized comparison),
``sweep`` (a figure sweep over ``values``), ``profile`` (one run under
the profiler, returning the ``repro-prof-metrics/1`` document), or
``check`` (the paper-claims conformance pass over ``benchmarks``).
:func:`parse_request` validates the document against the benchmark
registry and returns a :class:`ServeRequest`; validation failures
raise :class:`BadRequest`, which the server maps to a 400 with the
message in the body — a misbehaving client can never enqueue work the
executor would choke on.

Every request has a deterministic **fingerprint** — the idempotency
key.  For ``run``/``sweep``/``profile`` it is derived from the same
:func:`~repro.resilience.journal.job_fingerprint` material the run
journal and result cache key on (benchmark sources × resolved system ×
params × values × backend), so a retried submission after a client
timeout maps onto the original request instead of re-running, and a
code or configuration change mints a fresh key.  A client may override
it with an ``Idempotency-Key`` header.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ReproError

__all__ = [
    "REQUEST_SCHEMA",
    "KINDS",
    "STATES",
    "BadRequest",
    "ServeRequest",
    "parse_request",
    "request_fingerprint",
]

REQUEST_SCHEMA = "repro-serve-request/1"

KINDS = ("run", "sweep", "profile", "check")

#: request lifecycle; ``queued`` → ``running`` → one terminal state
STATES = ("queued", "running", "done", "failed", "expired")

_BACKENDS = ("reference", "fast", "jit")
_CHECK_BACKENDS = _BACKENDS + ("both", "all")
_IDEM_KEY_RE = re.compile(r"^[A-Za-z0-9_.:-]{1,128}$")
_CLIENT_RE = re.compile(r"^[A-Za-z0-9_.:-]{1,64}$")


class BadRequest(ReproError):
    """A request document failed validation; maps to HTTP 400."""


@dataclass
class ServeRequest:
    """One validated, executable serve request."""

    kind: str
    benchmark: str | None = None
    params: dict[str, Any] = field(default_factory=dict)
    values: list[Any] | None = None
    system: str | None = None
    backend: str | None = None
    benchmarks: list[str] | None = None      #: check only
    quick: bool = False                      #: check only
    deadline_ms: int | None = None
    client: str = "anon"
    fingerprint: str = ""

    def as_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": self.kind}
        if self.benchmark is not None:
            doc["benchmark"] = self.benchmark
        if self.params:
            doc["params"] = self.params
        if self.values is not None:
            doc["values"] = self.values
        if self.system is not None:
            doc["system"] = self.system
        if self.backend is not None:
            doc["backend"] = self.backend
        if self.benchmarks is not None:
            doc["benchmarks"] = self.benchmarks
        if self.quick:
            doc["quick"] = True
        if self.deadline_ms is not None:
            doc["deadline_ms"] = self.deadline_ms
        return doc

    def job_specs(self) -> list:
        """The :class:`~repro.sched.runner.JobSpec` decomposition.

        Only meaningful for ``run``/``sweep``/``profile``; mirrors the
        CLI's decomposition exactly (one job per sweep value) so the
        executed work — and therefore the result document — is
        byte-identical to the serial command line.
        """
        from repro.exec.dispatch import current_backend_name
        from repro.sched.runner import JobSpec

        backend = current_backend_name(self.backend)
        if self.kind == "sweep":
            return [
                JobSpec(
                    benchmark=self.benchmark,
                    kind="sweep",
                    params=dict(self.params),
                    values=(v,),
                    system=self.system,
                    backend=backend,
                )
                for v in self.values
            ]
        return [
            JobSpec(
                benchmark=self.benchmark,
                kind="run",
                params=dict(self.params),
                system=self.system,
                backend=backend,
            )
        ]


def _require_benchmark(name: Any) -> str:
    from repro.core.registry import list_benchmarks

    known = list_benchmarks()
    if not isinstance(name, str) or name not in known:
        raise BadRequest(
            f"unknown benchmark {name!r}; one of {', '.join(known)}"
        )
    return name


def _check_params(params: Any) -> dict[str, Any]:
    if params is None:
        return {}
    if not isinstance(params, dict):
        raise BadRequest("'params' must be an object of key=value pairs")
    for key, value in params.items():
        if not isinstance(key, str):
            raise BadRequest(f"parameter name {key!r} is not a string")
        if not isinstance(value, (int, float, str, bool)):
            raise BadRequest(
                f"parameter {key}={value!r} is not a scalar"
            )
    return dict(params)


def parse_request(
    doc: Any,
    *,
    client: str | None = None,
    idempotency_key: str | None = None,
) -> ServeRequest:
    """Validate a request document into a :class:`ServeRequest`.

    ``client`` is the caller's self-declared identity (the
    ``X-Client-Id`` header) used for per-client admission caps;
    ``idempotency_key`` overrides the derived fingerprint.
    """
    if not isinstance(doc, dict):
        raise BadRequest("request body must be a JSON object")
    kind = doc.get("kind")
    if kind not in KINDS:
        raise BadRequest(
            f"unknown kind {kind!r}; one of {', '.join(KINDS)}"
        )
    unknown = set(doc) - {
        "kind", "benchmark", "params", "values", "system", "backend",
        "benchmarks", "quick", "deadline_ms", "schema",
    }
    if unknown:
        raise BadRequest(f"unknown request field(s): {sorted(unknown)}")

    req = ServeRequest(kind=kind)
    req.params = _check_params(doc.get("params"))

    backend = doc.get("backend")
    allowed = _CHECK_BACKENDS if kind == "check" else _BACKENDS
    if backend is not None and backend not in allowed:
        raise BadRequest(
            f"unknown backend {backend!r}; one of {', '.join(allowed)}"
        )
    req.backend = backend

    system = doc.get("system")
    if system is not None:
        from repro.arch.presets import get_system

        try:
            get_system(system)
        except ReproError as exc:
            raise BadRequest(str(exc)) from None
        req.system = system

    if kind in ("run", "sweep", "profile"):
        req.benchmark = _require_benchmark(doc.get("benchmark"))
    if kind == "sweep":
        values = doc.get("values")
        if not isinstance(values, list) or not values:
            raise BadRequest("sweep requests need a non-empty 'values' list")
        for v in values:
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                raise BadRequest(f"sweep value {v!r} is not a number")
        req.values = list(values)
    elif doc.get("values") is not None:
        raise BadRequest("'values' only applies to sweep requests")
    if kind == "check":
        benchmarks = doc.get("benchmarks")
        if benchmarks is not None:
            if not isinstance(benchmarks, list) or not benchmarks:
                raise BadRequest("'benchmarks' must be a non-empty list")
            req.benchmarks = [_require_benchmark(b) for b in benchmarks]
        req.quick = bool(doc.get("quick", False))
    elif doc.get("benchmarks") is not None:
        raise BadRequest("'benchmarks' only applies to check requests")

    deadline = doc.get("deadline_ms")
    if deadline is not None:
        if not isinstance(deadline, int) or isinstance(deadline, bool) \
                or deadline <= 0:
            raise BadRequest("'deadline_ms' must be a positive integer")
        req.deadline_ms = deadline

    if client is not None:
        if not _CLIENT_RE.match(client):
            raise BadRequest(
                "X-Client-Id must be 1-64 chars of [A-Za-z0-9_.:-]"
            )
        req.client = client

    if idempotency_key is not None:
        if not _IDEM_KEY_RE.match(idempotency_key):
            raise BadRequest(
                "Idempotency-Key must be 1-128 chars of [A-Za-z0-9_.:-]"
            )
        req.fingerprint = f"user-{idempotency_key}"
    else:
        req.fingerprint = request_fingerprint(req)
    return req


def request_fingerprint(req: ServeRequest) -> str:
    """The derived idempotency key of a request.

    ``run``/``sweep``/``profile`` hash the
    :func:`~repro.resilience.journal.job_fingerprint` of every job the
    request decomposes into — the same sources × system × params ×
    values × backend closure the journal and cache key on — prefixed
    with the request kind, so a ``profile`` of the same work is a
    distinct key from its ``run``.  ``check`` requests hash their
    canonical request document (claims are re-evaluated per
    submission of a changed configuration).
    """
    from repro.sched.cache import _canonical

    digest = hashlib.sha256()
    digest.update(b"repro-serve:")
    digest.update(req.kind.encode())
    if req.kind == "check":
        digest.update(
            _canonical(
                {
                    "benchmarks": req.benchmarks,
                    "backend": req.backend,
                    "quick": req.quick,
                    "system": req.system,
                }
            ).encode()
        )
    else:
        from repro.resilience.journal import job_fingerprint

        for spec in req.job_specs():
            digest.update(job_fingerprint(spec).encode())
    return digest.hexdigest()
