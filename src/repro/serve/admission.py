"""Admission control: the daemon says *no* early instead of slow later.

Overload handling follows the standard playbook — bound the queue, shed
at the door, tell the client when to come back:

* **queue-depth bound** — at most ``max_queue`` accepted-but-unclaimed
  requests; past that a submission gets ``429`` with a ``Retry-After``
  estimated from recent service times, so admitted work keeps its
  latency instead of everyone's degrading together.
* **per-client in-flight cap** — at most ``max_per_client`` queued +
  running requests per ``X-Client-Id``; one greedy client cannot
  starve the rest (the anonymous pool shares one identity, which is
  exactly the incentive to send the header).
* **breaker rejections** — a benchmark whose circuit is open is
  rejected with ``503`` and a ``Retry-After`` of the remaining
  cool-down (decided by :mod:`repro.serve.breaker`; surfaced here so
  all rejection shapes live in one vocabulary).
* **drain rejections** — a draining daemon (SIGTERM received) returns
  ``503`` with no ``Retry-After``: it is going away, not recovering.

Decisions are value objects (:class:`AdmissionDecision`) so the HTTP
layer maps them to status lines without re-deriving policy, and tests
assert on the decision, not on socket behaviour.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["AdmissionDecision", "AdmissionController"]

#: default bound on accepted-but-unclaimed requests
DEFAULT_MAX_QUEUE = 64

#: default per-client queued+running cap
DEFAULT_MAX_PER_CLIENT = 8

#: Retry-After fallback when no service-time samples exist yet
_DEFAULT_RETRY_AFTER_S = 5

#: readiness high-water mark as a fraction of max_queue — /readyz goes
#: not-ready before admission starts rejecting, so load balancers steer
#: away early
READY_HIGH_WATER_FRAC = 0.8


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check."""

    admitted: bool
    status: int = 202           #: HTTP status for the rejection (or 202)
    reason: str = ""
    retry_after_s: int | None = None

    @staticmethod
    def ok() -> "AdmissionDecision":
        return AdmissionDecision(admitted=True)


class AdmissionController:
    """Queue-depth and per-client caps with a Retry-After estimator."""

    def __init__(
        self,
        *,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_per_client: int = DEFAULT_MAX_PER_CLIENT,
    ) -> None:
        self.max_queue = max(1, max_queue)
        self.max_per_client = max(1, max_per_client)
        self._lock = threading.Lock()
        #: ring of recent request service times (seconds)
        self._service_s: list[float] = []

    # -- service-time estimator -----------------------------------------
    def observe_service_time(self, seconds: float) -> None:
        with self._lock:
            self._service_s.append(max(0.0, seconds))
            if len(self._service_s) > 32:
                self._service_s.pop(0)

    def _mean_service_s(self) -> float:
        with self._lock:
            if not self._service_s:
                return 0.0
            return sum(self._service_s) / len(self._service_s)

    def retry_after_s(self, queue_depth: int, workers: int) -> int:
        """Estimate when a slot frees: depth × mean service / width."""
        mean = self._mean_service_s()
        if mean <= 0.0:
            return _DEFAULT_RETRY_AFTER_S
        est = queue_depth * mean / max(1, workers)
        return max(1, min(300, round(est)))

    # -- the decision ----------------------------------------------------
    def decide(
        self,
        *,
        queue_depth: int,
        client_load: int,
        workers: int,
        draining: bool = False,
        breaker_open: bool = False,
        breaker_retry_s: float = 0.0,
    ) -> AdmissionDecision:
        if draining:
            return AdmissionDecision(
                admitted=False, status=503, reason="draining",
            )
        if breaker_open:
            return AdmissionDecision(
                admitted=False, status=503, reason="breaker-open",
                retry_after_s=max(1, round(breaker_retry_s)),
            )
        if queue_depth >= self.max_queue:
            return AdmissionDecision(
                admitted=False, status=429, reason="queue-full",
                retry_after_s=self.retry_after_s(queue_depth, workers),
            )
        if client_load >= self.max_per_client:
            return AdmissionDecision(
                admitted=False, status=429, reason="client-cap",
                retry_after_s=self.retry_after_s(
                    max(1, client_load), workers
                ),
            )
        return AdmissionDecision.ok()

    @property
    def high_water(self) -> int:
        """Queue depth at which /readyz reports not-ready."""
        return max(1, int(self.max_queue * READY_HIGH_WATER_FRAC))
