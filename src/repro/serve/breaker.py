"""Per-benchmark circuit breaker for the serve daemon.

A benchmark whose jobs keep getting quarantined — a poisoned
configuration, a backend bug, chaos — should fail *fast* at admission
instead of burning a pool slot per doomed attempt.  Classic three-state
breaker, one per benchmark:

* **closed** — requests flow; consecutive failures are counted, a
  success resets the count.
* **open** — after :attr:`CircuitBreaker.threshold` consecutive
  failures; submissions are rejected immediately with 503 until
  ``cooldown_s`` elapses.  Expiries (deadline 504s) do **not** count:
  a tight client deadline says nothing about the benchmark's health.
* **half-open** — after the cool-down one *probe* request is admitted;
  its success closes the circuit, its failure re-opens it and restarts
  the cool-down.

The clock is injectable so tests step time instead of sleeping.  State
is in-memory only and resets on restart — deliberately: a restart is
exactly when a wedged benchmark deserves a fresh probe, and durable
state belongs to requests, not to health heuristics.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker", "BreakerBoard"]

#: consecutive failures before the circuit opens
DEFAULT_THRESHOLD = 3

#: seconds the circuit stays open before admitting a half-open probe
DEFAULT_COOLDOWN_S = 30.0


class CircuitBreaker:
    """closed → open → half-open lifecycle for one benchmark."""

    def __init__(
        self,
        *,
        threshold: int = DEFAULT_THRESHOLD,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = max(1, threshold)
        self.cooldown_s = cooldown_s
        self.now = now
        self.failures = 0
        self.opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if self.now() - self.opened_at >= self.cooldown_s:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a new request for this benchmark be admitted right now?

        In half-open state exactly one caller gets a ``True`` (the
        probe); the rest stay rejected until the probe reports back.
        """
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probing:
            self._probing = True
            return True
        return False

    def retry_after_s(self) -> float:
        """Seconds until the next half-open probe could be admitted."""
        if self.opened_at is None:
            return 0.0
        return max(0.0, self.cooldown_s - (self.now() - self.opened_at))

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._probing = False
        self.failures += 1
        if self.failures >= self.threshold:
            self.opened_at = self.now()


class BreakerBoard:
    """The daemon's breakers, one per benchmark, created on demand.

    ``check`` requests span many benchmarks and bypass the board
    entirely (the caller simply never consults it for them).
    """

    def __init__(
        self,
        *,
        threshold: int = DEFAULT_THRESHOLD,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.now = now
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def _get(self, benchmark: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(benchmark)
            if breaker is None:
                breaker = CircuitBreaker(
                    threshold=self.threshold,
                    cooldown_s=self.cooldown_s,
                    now=self.now,
                )
                self._breakers[benchmark] = breaker
            return breaker

    def allow(self, benchmark: str | None) -> bool:
        if benchmark is None:
            return True
        with self._lock:
            breaker = self._breakers.get(benchmark)
        if breaker is None:
            return True
        return breaker.allow()

    def retry_after_s(self, benchmark: str) -> float:
        return self._get(benchmark).retry_after_s()

    def record_success(self, benchmark: str | None) -> None:
        if benchmark is not None:
            self._get(benchmark).record_success()

    def record_failure(self, benchmark: str | None) -> None:
        if benchmark is not None:
            self._get(benchmark).record_failure()

    def states(self) -> dict[str, str]:
        """benchmark → breaker state, for /metrics and status."""
        with self._lock:
            return {
                name: breaker.state
                for name, breaker in self._breakers.items()
            }
