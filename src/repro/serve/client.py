"""Minimal stdlib client for the serve API (urllib, no dependencies).

Covers the whole request lifecycle the CLI, tests, and the CI
``serve-smoke`` job need::

    client = ServeClient("http://127.0.0.1:8080")
    sub = client.submit({"kind": "sweep", "benchmark": "MemAlign",
                         "values": [4096, 8192]})
    status = client.wait(sub["id"], timeout_s=120)
    text = client.result(status["fingerprint"])

Every response is parsed but otherwise untouched: ``result`` returns
the raw bytes of the stored document so a caller can ``cmp`` them
against a CLI ``--out`` file.  HTTP rejections raise
:class:`ServeRejected` carrying the status code and the server's
``Retry-After``, so a polite client can implement backoff without
string-parsing errors.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from repro.common.errors import ReproError

__all__ = ["ServeRejected", "ServeClient"]


class ServeRejected(ReproError):
    """A non-2xx response from the serve API."""

    def __init__(
        self, status: int, body: dict[str, Any],
        retry_after_s: int | None = None,
    ) -> None:
        reason = body.get("error", "") if isinstance(body, dict) else ""
        super().__init__(f"serve returned {status}: {reason}")
        self.status = status
        self.body = body
        self.retry_after_s = retry_after_s


class ServeClient:
    """One serve endpoint; every method is a single HTTP round trip."""

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- plumbing --------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        *,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        req = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers=headers or {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers or {}), exc.read()

    def _json(
        self, method: str, path: str, *,
        body: bytes | None = None, headers: dict[str, str] | None = None,
        ok: tuple[int, ...] = (200, 202),
    ) -> dict[str, Any]:
        status, resp_headers, data = self._request(
            method, path, body=body, headers=headers
        )
        try:
            doc = json.loads(data) if data else {}
        except json.JSONDecodeError:
            doc = {"error": data.decode(errors="replace")}
        if status not in ok:
            retry = resp_headers.get("Retry-After")
            raise ServeRejected(
                status, doc,
                retry_after_s=int(retry) if retry else None,
            )
        return doc

    # -- API -------------------------------------------------------------
    def submit(
        self,
        request: dict[str, Any],
        *,
        client_id: str | None = None,
        idempotency_key: str | None = None,
    ) -> dict[str, Any]:
        """POST /v1/jobs; the accepted (or duplicate) status document."""
        headers = {"Content-Type": "application/json"}
        if client_id is not None:
            headers["X-Client-Id"] = client_id
        if idempotency_key is not None:
            headers["Idempotency-Key"] = idempotency_key
        return self._json(
            "POST", "/v1/jobs",
            body=json.dumps(request).encode(), headers=headers,
        )

    def status(self, request_id: str) -> dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{request_id}", ok=(200,))

    def wait(
        self,
        request_id: str,
        *,
        timeout_s: float = 300.0,
        poll_s: float = 0.25,
    ) -> dict[str, Any]:
        """Poll until the request reaches a terminal state."""
        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.status(request_id)
            if doc.get("state") in ("done", "failed", "expired"):
                return doc
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"request {request_id} still {doc.get('state')!r} "
                    f"after {timeout_s:g}s"
                )
            time.sleep(poll_s)

    def result(self, fingerprint: str) -> bytes:
        """GET /v1/results/<fingerprint> as raw bytes (for cmp tests)."""
        status, headers, data = self._request(
            "GET", f"/v1/results/{fingerprint}"
        )
        if status != 200:
            try:
                doc = json.loads(data)
            except json.JSONDecodeError:
                doc = {"error": data.decode(errors="replace")}
            retry = headers.get("Retry-After")
            raise ServeRejected(
                status, doc, retry_after_s=int(retry) if retry else None
            )
        return data

    def metrics(self) -> str:
        status, _, data = self._request("GET", "/metrics")
        if status != 200:
            raise ServeRejected(status, {"error": "metrics unavailable"})
        return data.decode()

    def ready(self) -> bool:
        status, _, _ = self._request("GET", "/readyz")
        return status == 200

    def healthy(self) -> bool:
        status, _, _ = self._request("GET", "/healthz")
        return status == 204
