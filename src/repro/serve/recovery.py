"""Startup recovery: rebuild the queue from disk after any exit.

A restarting daemon — clean restart or post-``kill -9`` — replays its
data dir before accepting traffic (``/readyz`` stays not-ready until
this completes):

1. **state files first** — ``requests/<id>.json`` is the authoritative
   per-request record; every parseable file becomes an in-memory
   entry.
2. **intake journal as backstop** — an intake line whose state file is
   missing or torn (the crash hit between the fsync'd accept and the
   state write, or mid-replace) is rebuilt as a fresh ``queued``
   entry: accepted means persisted, so the 202 the client got is
   honoured.
3. **re-lease the incomplete** — entries found ``running`` were
   in-flight when the previous incarnation died.  Their execution
   leases are reclaimed (the previous owner is dead by construction —
   one daemon owns a data dir), the entries flip back to ``queued``,
   and re-execution resumes from the per-request run journal's
   checkpoints, so finished sweep points are replayed, not recomputed.
4. **completed stay completed** — ``done`` entries keep pointing at
   their content-addressed result files, which are served
   byte-identically after restart.

Returns a :class:`RecoverySummary` the server logs and exports as
``repro_serve_recovered_requests``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.serve.queue import DurableQueue, QueueEntry
from repro.serve.request import parse_request

__all__ = ["RecoverySummary", "recover"]


@dataclass
class RecoverySummary:
    """What one recovery pass found and did."""

    requests: int = 0            #: entries rebuilt in memory
    requeued: int = 0            #: queued entries put back on the queue
    releases: int = 0            #: running entries re-leased → queued
    completed: int = 0           #: terminal entries indexed
    rebuilt_from_intake: int = 0  #: state file lost; intake line used

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "requeued": self.requeued,
            "releases": self.releases,
            "completed": self.completed,
            "rebuilt_from_intake": self.rebuilt_from_intake,
        }


def recover(queue: DurableQueue) -> RecoverySummary:
    """Rebuild ``queue``'s in-memory state from its data directory.

    Must run before the queue takes new submissions; operates on the
    queue's internals (same package) under its lock.
    """
    summary = RecoverySummary()
    entries: dict[str, QueueEntry] = {}

    state_dir = queue.data_dir / "requests"
    for path in sorted(state_dir.glob("*.json")):
        entry = queue._load_state(path)
        if entry is None:
            continue
        entries[entry.id] = entry

    # backstop: every fsync'd intake line must surface as an entry even
    # if its state-file write never landed
    for line in queue._read_intake(queue._intake_path):
        rid = line.get("id")
        if rid in entries:
            continue
        try:
            request = parse_request(
                line.get("request"), client=line.get("client") or None
            )
        except Exception:  # noqa: BLE001 - unparseable backstop line
            continue
        request.fingerprint = line.get("fingerprint", request.fingerprint)
        entry = QueueEntry(rid, int(line.get("seq", 0)), request)
        entry.submitted_at = float(line.get("submitted_at", 0.0))
        entries[rid] = entry
        summary.rebuilt_from_intake += 1

    with queue._lock:
        for entry in sorted(entries.values(), key=lambda e: e.seq):
            summary.requests += 1
            if entry.state == "running":
                # the previous incarnation died holding the lease;
                # reclaim it and put the request back in line — its run
                # journal replays whatever finished before the crash
                lease = queue._read_lease(entry.id)
                if lease is not None:
                    queue.leases.release(lease)
                entry.state = "queued"
                entry.started_at = None
                queue._persist(entry)
                summary.releases += 1
            if entry.state == "queued":
                # a crash between lease-create and the running-state
                # write can orphan a lease on a still-queued entry;
                # reclaim it so the first post-restart claim succeeds
                lease = queue._read_lease(entry.id)
                if lease is not None:
                    queue.leases.release(lease)
                queue._pending.append(entry.id)
                summary.requeued += 1
            elif entry.terminal:
                summary.completed += 1
            queue._entries[entry.id] = entry
            queue._by_fingerprint[entry.request.fingerprint] = entry.id
            queue._seq = max(queue._seq, entry.seq + 1)
        queue._ready.notify_all()
    return summary
