"""The ``repro serve`` daemon: HTTP front, worker pool, drain logic.

One :class:`ServeDaemon` owns the four robustness planes the serve
package provides and wires them to a hardened stdlib HTTP server
(:mod:`repro.common.httpd`):

* :class:`~repro.serve.queue.DurableQueue` — accepted means persisted;
* :class:`~repro.serve.admission.AdmissionController` — 429 +
  ``Retry-After`` at the door instead of latency collapse inside;
* :class:`~repro.serve.breaker.BreakerBoard` — poisoned benchmarks
  fail fast with 503;
* :func:`~repro.serve.recovery.recover` — a restart replays the data
  dir before ``/readyz`` goes ready.

Endpoints::

    POST /v1/jobs                submit (202; 200 on finished duplicate)
    GET  /v1/jobs/<id>           status; ?watch=1 streams NDJSON progress
    GET  /v1/results/<fp>        finished result document (byte-identical
                                 to the serial CLI; 409/504/404 otherwise)
    GET  /healthz                liveness (204)
    GET  /readyz                 readiness = recovery done ∧ not draining
                                 ∧ queue below high water
    GET  /metrics                Prometheus 0.0.4 text, repro_serve_* series

Graceful drain: SIGTERM (wired by the CLI) calls :meth:`ServeDaemon.
drain` — intake flips to 503, workers finish their current request
(journals flush per checkpoint as always), queued requests stay
durable for the next incarnation, and the listening socket closes
cleanly.  Exit code 0 when nothing was pending, 4 ("interrupted;
journal saved") when queued or in-flight work remains for a restart.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.common.httpd import HardenedHandler, HardenedHTTPServer
from repro.obs.metrics import Sample
from repro.serve.admission import AdmissionController
from repro.serve.breaker import BreakerBoard
from repro.serve.executor import execute_request
from repro.serve.queue import DurableQueue, QueueEntry
from repro.serve.recovery import RecoverySummary, recover
from repro.serve.request import BadRequest, parse_request

__all__ = ["ServeDaemon"]

#: request-body bound for POST /v1/jobs (413 past this)
MAX_BODY_BYTES = 1 << 20

#: how long one watch poll waits before re-checking for events
_WATCH_POLL_S = 0.5

_JSON = "application/json"
_NDJSON = "application/x-ndjson"

_BREAKER_STATE_VALUE = {"closed": 0, "half-open": 1, "open": 2}


class ServeDaemon:
    """Benchmark-as-a-service on one data directory.

    ``start()`` recovers the data dir, spawns the worker pool, and
    binds the HTTP server; ``drain()`` (or the context manager exit)
    shuts it down gracefully.  ``now`` is injectable for tests.
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        jobs: int = 1,
        max_queue: int | None = None,
        max_per_client: int | None = None,
        breaker_threshold: int | None = None,
        breaker_cooldown_s: float | None = None,
        lease_ttl_s: float = 30.0,
        cache=None,
        now: Callable[[], float] = time.time,
    ) -> None:
        self.now = now
        self.workers = max(1, workers)
        self.jobs = max(1, jobs)
        self.cache = cache
        self.queue = DurableQueue(data_dir, lease_ttl_s=lease_ttl_s, now=now)
        admission_kwargs = {}
        if max_queue is not None:
            admission_kwargs["max_queue"] = max_queue
        if max_per_client is not None:
            admission_kwargs["max_per_client"] = max_per_client
        self.admission = AdmissionController(**admission_kwargs)
        breaker_kwargs: dict[str, Any] = {}
        if breaker_threshold is not None:
            breaker_kwargs["threshold"] = breaker_threshold
        if breaker_cooldown_s is not None:
            breaker_kwargs["cooldown_s"] = breaker_cooldown_s
        self.breakers = BreakerBoard(**breaker_kwargs)

        self._ready = threading.Event()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._threads: list[threading.Thread] = []
        self._http_thread: threading.Thread | None = None
        self._server = _ServeHTTPServer((host, port), _ServeHandler)
        self._server.daemon_ref = self
        self.recovery: RecoverySummary | None = None
        self.drain_duration_s: float | None = None
        self._counter_lock = threading.Lock()
        self._counters: dict[tuple[str, str], int] = {}

    # -- lifecycle -------------------------------------------------------
    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "ServeDaemon":
        """Recover the data dir, then open for traffic."""
        self.recovery = recover(self.queue)
        for n in range(self.workers):
            t = threading.Thread(
                target=self._worker_loop, args=(f"worker-{n}",),
                name=f"repro-serve-{n}", daemon=True,
            )
            t.start()
            self._threads.append(t)
        self._http_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-http", daemon=True,
        )
        self._http_thread.start()
        self._ready.set()
        return self

    def drain(self, grace_s: float = 30.0) -> int:
        """Stop intake, finish in-flight work, flush, close; exit code.

        Returns 0 when the queue drained completely, 4 when queued or
        in-flight requests remain durably on disk for the next
        incarnation (the established "interrupted; journal saved"
        code).
        """
        began = self.now()
        self._draining.set()
        self.queue.wake_all()
        deadline = time.monotonic() + grace_s
        for t in self._threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        self._server.close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5)
        pending = self.queue.depth() + self.queue.inflight()
        self.queue.close()
        self._stopped.set()
        self.drain_duration_s = self.now() - began
        return 0 if pending == 0 else 4

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        if not self._stopped.is_set():
            self.drain()

    # -- counters --------------------------------------------------------
    def _count(self, name: str, label: str = "") -> None:
        with self._counter_lock:
            key = (name, label)
            self._counters[key] = self._counters.get(key, 0) + 1

    # -- worker loop -----------------------------------------------------
    def _worker_loop(self, owner: str) -> None:
        while not self._draining.is_set():
            entry = self.queue.claim(owner, timeout=0.5)
            if entry is None:
                continue
            self._run_one(entry, owner)

    def _run_one(self, entry: QueueEntry, owner: str) -> None:
        req = entry.request
        if self._draining.is_set():
            # claimed in the race with drain: hand it back durably
            self.queue.requeue(entry)
            return
        began = self.now()

        def on_event(event: dict[str, Any]) -> None:
            self.queue.record_event(entry, event)
            self.queue.heartbeat(entry, owner)

        outcome = execute_request(
            entry,
            data_dir=self.queue.data_dir,
            cache=self.cache,
            jobs=self.jobs,
            on_event=on_event,
            now=self.now,
        )
        self.admission.observe_service_time(self.now() - began)
        benchmark = req.benchmark if req.kind != "check" else None
        if outcome.state == "done":
            self.queue.put_result(req.fingerprint, outcome.text or "")
            self.queue.complete(entry, req.fingerprint)
            self.breakers.record_success(benchmark)
            self._count("completed", "done")
        elif outcome.state == "expired":
            self.queue.expire(entry, outcome.error or "deadline expired")
            self._count("completed", "expired")
        else:
            self.queue.fail(entry, outcome.error or "failed")
            self.breakers.record_failure(benchmark)
            self._count("completed", "failed")

    # -- admission -------------------------------------------------------
    def admit(self, request) -> "tuple[Any, dict[str, Any], int]":
        """Admission + submission for one parsed request.

        Returns ``(decision, body, status)``: a rejected decision keeps
        nothing; an admitted one has durably enqueued the request (or
        mapped it onto its duplicate) before returning.
        """
        from repro.serve.admission import AdmissionDecision

        # duplicates ride free: answering from the store costs nothing,
        # so they bypass depth and client caps
        existing = self.queue.by_fingerprint(request.fingerprint)
        if existing is not None and not self._draining.is_set():
            entry, _ = self.queue.submit(request)
            self._count("duplicates")
            body = entry.status_doc()
            body["duplicate"] = True
            return AdmissionDecision.ok(), body, (
                200 if entry.state == "done" else 202
            )
        benchmark = request.benchmark if request.kind != "check" else None
        breaker_open = not self.breakers.allow(benchmark)
        decision = self.admission.decide(
            queue_depth=self.queue.depth(),
            client_load=self.queue.client_load(request.client),
            workers=self.workers,
            draining=self._draining.is_set(),
            breaker_open=breaker_open,
            breaker_retry_s=(
                self.breakers.retry_after_s(benchmark)
                if breaker_open and benchmark is not None else 0.0
            ),
        )
        if not decision.admitted:
            self._count("rejections", decision.reason)
            return decision, {"error": decision.reason}, decision.status
        entry, duplicate = self.queue.submit(request)
        self._count("accepted")
        body = entry.status_doc()
        if duplicate:
            body["duplicate"] = True
        return decision, body, 202

    # -- readiness -------------------------------------------------------
    def readiness(self) -> tuple[bool, str]:
        if not self._ready.is_set():
            return False, "recovering"
        if self._draining.is_set():
            return False, "draining"
        depth = self.queue.depth()
        if depth >= self.admission.high_water:
            return False, f"queue depth {depth} at high water"
        return True, "ready"

    # -- metrics ---------------------------------------------------------
    def samples(self) -> list[Sample]:
        counts = self.queue.counts()
        out = [
            Sample(
                "repro_serve_queue_depth", float(self.queue.depth()),
                help="accepted requests not yet claimed by a worker",
            ),
            Sample(
                "repro_serve_inflight", float(counts["running"]),
                help="requests currently executing", type="gauge",
            ),
            Sample(
                "repro_serve_ready",
                1.0 if self.readiness()[0] else 0.0,
                help="1 when /readyz reports ready",
            ),
            Sample(
                "repro_serve_draining",
                1.0 if self._draining.is_set() else 0.0,
                help="1 after SIGTERM stopped intake",
            ),
            Sample(
                "repro_serve_workers", float(self.workers),
                help="request worker threads",
            ),
        ]
        for state, n in counts.items():
            out.append(Sample(
                "repro_serve_requests", float(n), {"state": state},
                help="known requests by lifecycle state",
            ))
        if self.recovery is not None:
            out.append(Sample(
                "repro_serve_recovered_requests",
                float(self.recovery.requests),
                help="requests rebuilt from disk at startup",
            ))
            out.append(Sample(
                "repro_serve_recovered_releases",
                float(self.recovery.releases),
                help="in-flight requests re-leased at startup",
            ))
        with self._counter_lock:
            counters = dict(self._counters)
        helps = {
            "accepted": "requests admitted and durably enqueued",
            "duplicates": "submissions answered from an existing request",
            "rejections": "submissions refused at admission",
            "completed": "requests driven to a terminal state",
        }
        label_key = {"rejections": "reason", "completed": "state"}
        for (name, label), n in sorted(counters.items()):
            labels = (
                {label_key[name]: label}
                if label and name in label_key else {}
            )
            out.append(Sample(
                f"repro_serve_{name}_total", float(n), labels,
                help=helps.get(name, ""), type="counter",
            ))
        for benchmark, state in sorted(self.breakers.states().items()):
            out.append(Sample(
                "repro_serve_breaker_state",
                float(_BREAKER_STATE_VALUE[state]),
                {"benchmark": benchmark},
                help="0 closed, 1 half-open, 2 open",
            ))
        if self.drain_duration_s is not None:
            out.append(Sample(
                "repro_serve_drain_duration_seconds",
                self.drain_duration_s,
                help="wall-clock of the last graceful drain",
            ))
        return out


# ----------------------------------------------------------------------
class _ServeHTTPServer(HardenedHTTPServer):
    daemon_ref: ServeDaemon


class _ServeHandler(HardenedHandler):
    """Route table for the serve API; thin — policy lives in the daemon."""

    server_version = "repro-serve/1"

    @property
    def daemon(self) -> ServeDaemon:
        return self.server.daemon_ref

    # -- helpers ---------------------------------------------------------
    def _send_json(
        self, status: int, body: dict[str, Any],
        *, retry_after_s: int | None = None,
    ) -> None:
        data = (json.dumps(body, indent=2) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", _JSON)
        self.send_header("Content-Length", str(len(data)))
        if retry_after_s is not None:
            self.send_header("Retry-After", str(retry_after_s))
        self.end_headers()
        self.wfile.write(data)

    def _send_bytes(self, status: int, data: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> bytes | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json(400, {"error": "bad Content-Length"})
            return None
        if length > MAX_BODY_BYTES:
            self._send_json(413, {"error": "request body too large"})
            return None
        return self.rfile.read(length)

    # -- routes ----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
        path = self.path.split("?", 1)[0]
        if path != "/v1/jobs":
            self._send_json(404, {"error": f"no route {path}"})
            return
        body = self._read_body()
        if body is None:
            return
        try:
            doc = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            self._send_json(400, {"error": f"invalid JSON body: {exc}"})
            return
        try:
            request = parse_request(
                doc,
                client=self.headers.get("X-Client-Id"),
                idempotency_key=self.headers.get("Idempotency-Key"),
            )
        except BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
            return
        decision, out, status = self.daemon.admit(request)
        self._send_json(
            status, out, retry_after_s=decision.retry_after_s,
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self.send_response(204)
            self.end_headers()
        elif path == "/readyz":
            ready, reason = self.daemon.readiness()
            self._send_bytes(
                200 if ready else 503, f"{reason}\n".encode(),
                "text/plain; charset=utf-8",
            )
        elif path == "/metrics":
            from repro.obs.metrics import prometheus_text

            self._send_bytes(
                200, prometheus_text(self.daemon.samples()).encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path.startswith("/v1/jobs/"):
            self._get_job(path[len("/v1/jobs/"):], query)
        elif path.startswith("/v1/results/"):
            self._get_result(path[len("/v1/results/"):])
        else:
            self._send_json(404, {"error": f"no route {path}"})

    def _get_job(self, request_id: str, query: str) -> None:
        entry = self.daemon.queue.get(request_id)
        if entry is None:
            self._send_json(404, {"error": f"no request {request_id}"})
            return
        if "watch=1" in query.split("&"):
            self._watch_job(entry)
            return
        self._send_json(200, entry.status_doc())

    def _watch_job(self, entry: QueueEntry) -> None:
        """Stream NDJSON progress until the request goes terminal."""
        self.send_response(200)
        self.send_header("Content-Type", _NDJSON)
        self.end_headers()
        try:
            for line in _progress_lines(entry, self.daemon):
                self.wfile.write(line)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass
        self.close_connection = True

    def _get_result(self, fingerprint: str) -> None:
        data = self.daemon.queue.get_result(fingerprint)
        if data is not None:
            self._send_bytes(200, data, _JSON)
            return
        entry = self.daemon.queue.by_fingerprint(fingerprint)
        if entry is None:
            self._send_json(404, {"error": f"no result {fingerprint}"})
        elif entry.state == "expired":
            self._send_json(
                504, {"error": entry.error or "deadline expired",
                      "id": entry.id, "state": entry.state},
            )
        elif entry.state == "failed":
            self._send_json(
                500, {"error": entry.error or "request failed",
                      "id": entry.id, "state": entry.state},
            )
        else:
            self._send_json(
                409,
                {"error": "not finished", "id": entry.id,
                 "state": entry.state},
                retry_after_s=self.daemon.admission.retry_after_s(
                    self.daemon.queue.depth(), self.daemon.workers
                ),
            )


def _progress_lines(entry: QueueEntry, daemon: ServeDaemon) -> Iterator[bytes]:
    """status line, live events as they arrive, terminal status line."""

    def dump(obj: dict[str, Any]) -> bytes:
        return (json.dumps(obj, separators=(",", ":")) + "\n").encode()

    yield dump(entry.status_doc())
    sent = 0
    while True:
        with entry.cond:
            events = entry.events[sent:]
            if not events and not entry.terminal:
                if daemon._draining.is_set():
                    break
                entry.cond.wait(_WATCH_POLL_S)
                events = entry.events[sent:]
        for event in events:
            yield dump(event)
        sent += len(events)
        if entry.terminal:
            with entry.cond:
                remaining = entry.events[sent:]
            for event in remaining:
                yield dump(event)
            yield dump(entry.status_doc())
            return
