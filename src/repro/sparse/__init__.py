"""Sparse matrix formats (CSR/CSC) built from scratch."""

from repro.sparse.csr import CSCMatrix, CSRMatrix, random_sparse

__all__ = ["CSCMatrix", "CSRMatrix", "random_sparse"]
