"""Compressed sparse row/column matrices, built from scratch.

The MiniTransfer microbenchmark (paper §V-D, Fig. 17) contrasts
shipping a dense ``n x n`` matrix to the GPU against shipping the three
CSR vectors.  This module provides the host-side format: construction
from dense/COO data, size accounting (what actually crosses PCIe),
reference SpMV, and a reproducible random sparse-matrix generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import make_rng

__all__ = ["CSRMatrix", "CSCMatrix", "random_sparse"]


@dataclass
class CSRMatrix:
    """Compressed sparse row: ``values``, ``col_idx``, ``row_ptr``."""

    n_rows: int
    n_cols: int
    values: np.ndarray    #: float32[nnz]
    col_idx: np.ndarray   #: int32[nnz]
    row_ptr: np.ndarray   #: int32[n_rows + 1]

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float32)
        self.col_idx = np.asarray(self.col_idx, dtype=np.int32)
        self.row_ptr = np.asarray(self.row_ptr, dtype=np.int32)
        if self.row_ptr.shape != (self.n_rows + 1,):
            raise ValueError("row_ptr must have n_rows + 1 entries")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != self.nnz:
            raise ValueError("row_ptr must start at 0 and end at nnz")
        if (np.diff(self.row_ptr) < 0).any():
            raise ValueError("row_ptr must be non-decreasing")
        if self.col_idx.shape != self.values.shape:
            raise ValueError("col_idx and values must have equal length")
        if self.nnz and (
            self.col_idx.min() < 0 or self.col_idx.max() >= self.n_cols
        ):
            raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def nbytes(self) -> int:
        """Bytes that must cross the link to ship this matrix."""
        return self.values.nbytes + self.col_idx.nbytes + self.row_ptr.nbytes

    @property
    def density(self) -> float:
        total = self.n_rows * self.n_cols
        return self.nnz / total if total else 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("from_dense needs a 2-D array")
        rows, cols = np.nonzero(dense)
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        values = dense[rows, cols].astype(np.float32)
        row_ptr = np.zeros(dense.shape[0] + 1, dtype=np.int32)
        np.add.at(row_ptr, rows + 1, 1)
        row_ptr = np.cumsum(row_ptr, dtype=np.int32)
        return cls(dense.shape[0], dense.shape[1], values, cols.astype(np.int32), row_ptr)

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n_rows, self.n_cols), dtype=np.float32)
        rows = np.repeat(np.arange(self.n_rows), np.diff(self.row_ptr))
        out[rows, self.col_idx] = self.values
        return out

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference ``y = A @ x`` on the host."""
        x = np.asarray(x, dtype=np.float32)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x must have {self.n_cols} entries")
        prods = self.values * x[self.col_idx]
        y = np.zeros(self.n_rows, dtype=np.float32)
        rows = np.repeat(np.arange(self.n_rows), np.diff(self.row_ptr))
        np.add.at(y, rows, prods)
        return y

    def transpose(self) -> "CSCMatrix":
        """The same matrix viewed as CSC (shares no storage)."""
        dense_free = CSRMatrix.from_dense  # noqa: F841 (doc aid)
        coo_rows = np.repeat(np.arange(self.n_rows), np.diff(self.row_ptr))
        order = np.lexsort((coo_rows, self.col_idx))
        rows = coo_rows[order].astype(np.int32)
        vals = self.values[order]
        col_ptr = np.zeros(self.n_cols + 1, dtype=np.int32)
        np.add.at(col_ptr, self.col_idx + 1, 1)
        col_ptr = np.cumsum(col_ptr, dtype=np.int32)
        return CSCMatrix(self.n_rows, self.n_cols, vals, rows, col_ptr)


@dataclass
class CSCMatrix:
    """Compressed sparse column: the CSR of the transpose."""

    n_rows: int
    n_cols: int
    values: np.ndarray    #: float32[nnz]
    row_idx: np.ndarray   #: int32[nnz]
    col_ptr: np.ndarray   #: int32[n_cols + 1]

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float32)
        self.row_idx = np.asarray(self.row_idx, dtype=np.int32)
        self.col_ptr = np.asarray(self.col_ptr, dtype=np.int32)
        if self.col_ptr.shape != (self.n_cols + 1,):
            raise ValueError("col_ptr must have n_cols + 1 entries")

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def nbytes(self) -> int:
        return self.values.nbytes + self.row_idx.nbytes + self.col_ptr.nbytes

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n_rows, self.n_cols), dtype=np.float32)
        cols = np.repeat(np.arange(self.n_cols), np.diff(self.col_ptr))
        out[self.row_idx, cols] = self.values
        return out


def random_sparse(
    n: int,
    nnz: int,
    *,
    seed: int | None = None,
    label: str = "spmv",
) -> CSRMatrix:
    """A reproducible random ``n x n`` CSR matrix with exactly ``nnz``
    non-zeros (uniformly placed, values in [0.5, 1.5))."""
    if nnz > n * n:
        raise ValueError(f"nnz={nnz} exceeds matrix capacity {n * n}")
    rng = make_rng(seed, label)
    flat = rng.choice(n * n, size=nnz, replace=False)
    rows, cols = np.divmod(np.sort(flat), n)
    values = rng.random(nnz, dtype=np.float32) + 0.5
    row_ptr = np.zeros(n + 1, dtype=np.int32)
    np.add.at(row_ptr, rows + 1, 1)
    row_ptr = np.cumsum(row_ptr, dtype=np.int32)
    return CSRMatrix(n, n, values, cols.astype(np.int32), row_ptr)
