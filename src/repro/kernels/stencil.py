"""2-D 5-point stencil kernels (Jacobi step).

The paper's related work (§VI-B) leans on stencils — Micikevicius's 3-D
finite difference is the canonical shared-memory + async-copy showcase.
These kernels provide that workload at 2-D scale for the simulator:

* :data:`stencil_global` — every neighbour read goes to global memory;
  interior points are read up to five times per sweep, so the kernel
  leans entirely on the caches;
* :data:`stencil_shared` — each block stages its ``(TILE+2)^2`` halo
  tile in shared memory once and serves all five reads from SRAM, the
  classic optimization.

Both compute ``out[y, x] = (c[y,x] + up + down + left + right) / 5``
over the interior, copying the boundary unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import LaunchConfigError
from repro.simt.kernel import kernel

__all__ = ["STENCIL_TILE", "stencil_global", "stencil_shared", "stencil_host_reference", "stencil_grid_for"]

STENCIL_TILE = 16


def stencil_grid_for(n: int) -> tuple[tuple[int, int], tuple[int, int]]:
    """(grid, block) covering an ``n x n`` field with TILE x TILE blocks."""
    if n % STENCIL_TILE:
        raise LaunchConfigError(
            f"field size {n} not a multiple of tile {STENCIL_TILE}"
        )
    t = n // STENCIL_TILE
    return (t, t), (STENCIL_TILE, STENCIL_TILE)


def stencil_host_reference(field: np.ndarray) -> np.ndarray:
    """One Jacobi sweep on the host (float32 arithmetic order-matched)."""
    f = field.astype(np.float32)
    out = f.copy()
    acc = f[1:-1, 1:-1] + f[:-2, 1:-1]
    acc = acc + f[2:, 1:-1]
    acc = acc + f[1:-1, :-2]
    acc = acc + f[1:-1, 2:]
    out[1:-1, 1:-1] = acc * np.float32(0.2)
    return out


@kernel
def stencil_global(ctx, inp, out, n):
    """5-point stencil with all reads from global memory."""
    x = ctx.block_idx_x * ctx.block.x + ctx.thread_idx_x
    y = ctx.block_idx_y * ctx.block.y + ctx.thread_idx_y
    i = y * n + x

    interior = (x > 0) & (x < n - 1) & (y > 0) & (y < n - 1)

    def inner():
        acc = ctx.load(inp, i)
        acc = acc + ctx.load(inp, i - n)
        acc = acc + ctx.load(inp, i + n)
        acc = acc + ctx.load(inp, i - 1)
        acc = acc + ctx.load(inp, i + 1)
        ctx.store(out, i, acc * 0.2)

    def border():
        ctx.store(out, i, ctx.load(inp, i))

    in_bounds = (x < n) & (y < n)

    def body():
        ctx.branch(interior, inner, border)

    ctx.if_active(in_bounds, body)


@kernel(registers=40)
def stencil_shared(ctx, inp, out, n):
    """5-point stencil staging an (TILE+2)^2 halo tile in shared memory."""
    t = STENCIL_TILE
    tile = ctx.shared_array((t + 2, t + 2), np.float32)
    tx = ctx.thread_idx_x
    ty = ctx.thread_idx_y
    x = ctx.block_idx_x * t + tx
    y = ctx.block_idx_y * t + ty

    def clamp_load(xx, yy):
        cx = ctx.min(ctx.max(xx, 0), n - 1)
        cy = ctx.min(ctx.max(yy, 0), n - 1)
        return ctx.load(inp, cy * n + cx)

    # centre cells
    tile.store((ty + 1, tx + 1), clamp_load(x, y))
    # halo: edge threads fetch their outside neighbour (clamped)
    ctx.if_active(tx == 0, lambda: tile.store((ty + 1, tx), clamp_load(x - 1, y)))
    ctx.if_active(
        tx == t - 1, lambda: tile.store((ty + 1, tx + 2), clamp_load(x + 1, y))
    )
    ctx.if_active(ty == 0, lambda: tile.store((ty, tx + 1), clamp_load(x, y - 1)))
    ctx.if_active(
        ty == t - 1, lambda: tile.store((ty + 2, tx + 1), clamp_load(x, y + 1))
    )
    ctx.syncthreads()

    interior = (x > 0) & (x < n - 1) & (y > 0) & (y < n - 1)
    i = y * n + x

    def inner():
        acc = tile.load((ty + 1, tx + 1))
        acc = acc + tile.load((ty, tx + 1))
        acc = acc + tile.load((ty + 2, tx + 1))
        acc = acc + tile.load((ty + 1, tx))
        acc = acc + tile.load((ty + 1, tx + 2))
        ctx.store(out, i, acc * 0.2)

    def border():
        ctx.store(out, i, tile.load((ty + 1, tx + 1)))

    in_bounds = (x < n) & (y < n)

    def body():
        ctx.branch(interior, inner, border)

    ctx.if_active(in_bounds, body)
