"""Device kernels used by the microbenchmarks and examples."""

from repro.kernels.axpy import (
    axpy_1per_thread,
    axpy_aligned,
    axpy_block,
    axpy_cyclic,
    axpy_misaligned,
    axpy_shared_async,
    axpy_shared_staged,
    axpy_strided,
)
from repro.kernels.matadd import (
    matadd_constant_scatter,
    matadd_global,
    matadd_ldg,
    matadd_tex1d,
    matadd_tex2d,
    saxpy_const_coeffs,
)
from repro.kernels.matmul import TILE, matmul_grid_for, matmul_naive, matmul_tiled
from repro.kernels.mandelbrot import (
    MAX_DWELL_DEFAULT,
    dwell_host_reference,
    fill_indexed,
    mandel_escape,
    mandel_points,
)
from repro.kernels.reduction import (
    reduce_interleaved_bc,
    reduce_sequential,
    reduce_shuffle,
)
from repro.kernels.spmv import spmv_csc, spmv_csr, spmv_dense_row
from repro.kernels.stencil import (
    STENCIL_TILE,
    stencil_global,
    stencil_grid_for,
    stencil_host_reference,
    stencil_shared,
)

__all__ = [
    "spmv_csc",
    "STENCIL_TILE",
    "stencil_global",
    "stencil_grid_for",
    "stencil_host_reference",
    "stencil_shared",
    "axpy_1per_thread",
    "axpy_aligned",
    "axpy_block",
    "axpy_cyclic",
    "axpy_misaligned",
    "axpy_shared_async",
    "axpy_shared_staged",
    "axpy_strided",
    "matadd_constant_scatter",
    "matadd_global",
    "matadd_ldg",
    "matadd_tex1d",
    "matadd_tex2d",
    "saxpy_const_coeffs",
    "TILE",
    "matmul_grid_for",
    "matmul_naive",
    "matmul_tiled",
    "MAX_DWELL_DEFAULT",
    "dwell_host_reference",
    "fill_indexed",
    "mandel_escape",
    "mandel_points",
    "reduce_interleaved_bc",
    "reduce_sequential",
    "reduce_shuffle",
    "spmv_csr",
    "spmv_dense_row",
]
