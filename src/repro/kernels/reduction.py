"""Block reduction kernels (paper Fig. 12 and §IV-E).

Three variants of per-block sum reduction, each writing one partial sum
per block to ``r[blockIdx.x]``:

* :data:`reduce_interleaved_bc` — interleaved addressing with a doubling
  stride: iteration *s* makes lanes hit the same bank ``2s`` apart, a
  growing bank conflict (the paper's ``sum_bc``);
* :data:`reduce_sequential` — sequential addressing, conflict-free
  (the paper's ``sum``);
* :data:`reduce_shuffle` — sequential addressing down to warp size,
  then ``__shfl_down`` within the warp: fewer barriers and no shared
  traffic in the tail (paper Fig. 11).

The block size must be a power of two (as in the paper's kernels).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import LaunchConfigError
from repro.simt.kernel import kernel

__all__ = ["reduce_interleaved_bc", "reduce_sequential", "reduce_shuffle"]


def _check_pow2(bs: int) -> None:
    if bs & (bs - 1):
        raise LaunchConfigError(f"reduction needs a power-of-two block, got {bs}")


@kernel
def reduce_interleaved_bc(ctx, x, r):
    """Interleaved-addressing reduction with bank conflicts (``sum_bc``)."""
    bs = ctx.block.x
    _check_pow2(bs)
    cache = ctx.shared_array(bs, np.float32)
    tid = ctx.global_thread_id()
    cid = ctx.thread_idx_x
    cache.store(cid, ctx.load(x, tid))
    ctx.syncthreads()
    i = 1
    while i < bs:
        index = 2 * i * cid
        stride = i

        def body(index=index, stride=stride):
            cache.store(index, cache.load(index) + cache.load(index + stride))

        ctx.if_active(index < bs, body)
        ctx.syncthreads()
        i *= 2
    ctx.if_active(cid == 0, lambda: ctx.store(r, ctx.block_idx_x, cache.load(cid)))


@kernel
def reduce_sequential(ctx, x, r):
    """Sequential-addressing reduction, conflict-free (``sum``)."""
    bs = ctx.block.x
    _check_pow2(bs)
    cache = ctx.shared_array(bs, np.float32)
    tid = ctx.global_thread_id()
    cid = ctx.thread_idx_x
    cache.store(cid, ctx.load(x, tid))
    ctx.syncthreads()
    i = bs // 2
    while i > 0:
        stride = i

        def body(stride=stride):
            cache.store(cid, cache.load(cid) + cache.load(cid + stride))

        ctx.if_active(cid < stride, body)
        ctx.syncthreads()
        i //= 2
    ctx.if_active(cid == 0, lambda: ctx.store(r, ctx.block_idx_x, cache.load(cid)))


@kernel
def reduce_shuffle(ctx, x, r):
    """Reduction finishing inside the warp with ``__shfl_down_sync``.

    Shared memory and ``__syncthreads`` are used only down to one warp
    per block; the last five steps exchange registers directly
    (paper §IV-E).
    """
    bs = ctx.block.x
    _check_pow2(bs)
    warp = ctx.warp_size
    cache = ctx.shared_array(max(bs, warp), np.float32)
    tid = ctx.global_thread_id()
    cid = ctx.thread_idx_x
    cache.store(cid, ctx.load(x, tid))
    ctx.syncthreads()
    i = bs // 2
    while i >= warp:
        stride = i

        def body(stride=stride):
            cache.store(cid, cache.load(cid) + cache.load(cid + stride))

        ctx.if_active(cid < stride, body)
        ctx.syncthreads()
        i //= 2
    # One warp left: shuffle the rest without shared memory or barriers.
    val = cache.load(ctx.min(cid, warp - 1))
    delta = warp // 2
    while delta > 0:
        val = val + ctx.shfl_down(val, delta)
        delta //= 2
    ctx.if_active(cid == 0, lambda: ctx.store(r, ctx.block_idx_x, val))
