"""AXPY kernels: the paper's workhorse example.

``y[i] += a * x[i]`` appears throughout the paper in different guises:

* Fig. 8 — one-element-per-thread, block-distributed and
  cyclic-distributed loops (coalescing, CoMem);
* Fig. 10 — aligned vs. misaligned indexing (MemAlign);
* §IV-D — staging through shared memory with and without
  ``memcpy_async`` (GSOverlap);
* §V-C — strided access density (UniMem).

All kernels compute bit-identical results to the NumPy reference
``y += a * x`` over the elements they touch.
"""

from __future__ import annotations

from repro.simt.kernel import kernel

__all__ = [
    "axpy_1per_thread",
    "axpy_block",
    "axpy_cyclic",
    "axpy_aligned",
    "axpy_misaligned",
    "axpy_strided",
    "axpy_shared_staged",
    "axpy_shared_async",
]


@kernel
def axpy_1per_thread(ctx, x, y, n, a):
    """One element per thread; coalesced (paper Fig. 8, first kernel)."""
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(y, i, a * ctx.load(x, i) + ctx.load(y, i)))


@kernel
def axpy_block(ctx, x, y, n, a):
    """Block distribution of loop iterations (paper Fig. 8, second kernel).

    Each thread owns a contiguous chunk, so a warp's lanes are
    ``n/total_threads`` elements apart: uncoalesced.
    """
    i = ctx.global_thread_id()
    total = ctx.total_threads()
    block_size = n // total
    start = i * block_size
    stop = start + block_size
    for j in ctx.strided_range(start, stop, 1):
        ctx.branch(j < n, lambda: ctx.store(y, j, a * ctx.load(x, j) + ctx.load(y, j)))


@kernel
def axpy_cyclic(ctx, x, y, n, a):
    """Cyclic distribution (paper Fig. 8, third kernel): coalesced."""
    i = ctx.global_thread_id()
    total = ctx.total_threads()
    for j in ctx.strided_range(i, n, total):
        ctx.store(y, j, a * ctx.load(x, j) + ctx.load(y, j))


@kernel
def axpy_aligned(ctx, x, y, n, a):
    """Aligned access (paper Fig. 10a): element 0 skipped, warp requests
    start on a transaction boundary."""
    i = ctx.global_thread_id()
    ctx.if_active(
        (i > 0) & (i < n),
        lambda: ctx.store(y, i, a * ctx.load(x, i) + ctx.load(y, i)),
    )


@kernel
def axpy_misaligned(ctx, x, y, n, a):
    """Misaligned access (paper Fig. 10b): the +1 offset makes every warp
    straddle an extra 128-byte segment."""
    i = ctx.global_thread_id() + 1
    ctx.if_active(i < n, lambda: ctx.store(y, i, a * ctx.load(x, i) + ctx.load(y, i)))


@kernel
def axpy_strided(ctx, x, y, n, a, stride):
    """Strided AXPY (paper §V-C): thread t updates element ``t * stride``.

    ``stride`` controls memory-access density — the fraction of each
    transferred page that computation actually uses.
    """
    i = ctx.global_thread_id() * stride
    ctx.if_active(i < n, lambda: ctx.store(y, i, a * ctx.load(x, i) + ctx.load(y, i)))


@kernel
def axpy_shared_staged(ctx, x, y, n, a):
    """AXPY staging x through shared memory via registers (paper §IV-D).

    The global->register->shared round trip is the baseline that
    ``memcpy_async`` eliminates.
    """
    tile = ctx.shared_array(ctx.block.x, x.dtype)
    i = ctx.global_thread_id()
    t = ctx.thread_idx_x

    def body():
        tile.store(t, ctx.load(x, i))  # global -> register -> shared

    ctx.if_active(i < n, body)
    ctx.syncthreads()

    def compute():
        ctx.store(y, i, a * tile.load(t) + ctx.load(y, i))

    ctx.if_active(i < n, compute)


@kernel
def axpy_shared_async(ctx, x, y, n, a):
    """AXPY staging x through shared memory with ``memcpy_async``
    (paper §IV-D): the copy bypasses registers and pipelines with the
    rest of the kernel.  Requires an Ampere-class GPU."""
    tile = ctx.shared_array(ctx.block.x, x.dtype)
    i = ctx.global_thread_id()
    t = ctx.thread_idx_x

    ctx.if_active(i < n, lambda: ctx.memcpy_async(tile, t, x, i))
    ctx.pipeline_commit_and_wait()
    ctx.syncthreads()

    def compute():
        ctx.store(y, i, a * tile.load(t) + ctx.load(y, i))

    ctx.if_active(i < n, compute)
