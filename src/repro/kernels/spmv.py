"""Sparse matrix-vector multiplication kernels (paper §V-D, Fig. 17).

``y = A @ x`` with one row per thread, in two storage formats:

* :data:`spmv_dense_row` — the matrix ships and computes in dense
  row-major form: every zero is transferred and multiplied, and the
  row-per-thread loop makes warp lanes stride ``n`` elements apart
  (uncoalesced, the Fig. 7c pathology);
* :data:`spmv_csr` — the matrix ships as CSR; each thread walks its
  row's non-zeros.  Uneven row lengths cause some divergence, but both
  the transfer volume and the flop count shrink by the density factor.
"""

from __future__ import annotations

from repro.simt.kernel import kernel

__all__ = ["spmv_dense_row", "spmv_csr", "spmv_csc"]


@kernel
def spmv_dense_row(ctx, a, x, y, n):
    """Dense row-major SpMV, one row per thread."""
    import numpy as np

    row = ctx.global_thread_id()

    def body():
        acc = ctx.zeros(np.float32)
        for k in ctx.range_uniform(n):
            acc = ctx.fma(ctx.load(a, row * n + k), ctx.load(x, k), acc)
        ctx.store(y, row, acc)

    ctx.if_active(row < n, body)


@kernel
def spmv_csc(ctx, values, row_idx, col_ptr, x, y, n):
    """CSC SpMV, one column per thread, accumulating with atomics.

    Demonstrates why format choice matters beyond transfer volume
    (paper §IV-B): the column-major layout forces scattered atomic
    accumulation into ``y``, so CSR is the right format for ``A @ x``
    and CSC for ``A.T @ x`` — "the right combination of CSR and CSC".
    ``y`` must be zero-initialised by the caller.
    """
    import numpy as np

    col = ctx.global_thread_id()

    def body():
        start = ctx.load(col_ptr, col)
        stop = ctx.load(col_ptr, col + 1)
        xv = ctx.load(x, col)
        for j in ctx.strided_range(start, stop, 1):
            row = ctx.load(row_idx, j)
            ctx.atomic_add(y, row, ctx.load(values, j) * xv)

    ctx.if_active(col < n, body)


@kernel
def spmv_csr(ctx, values, col_idx, row_ptr, x, y, n):
    """CSR SpMV, one row per thread (scalar CSR kernel)."""
    import numpy as np

    row = ctx.global_thread_id()

    def body():
        start = ctx.load(row_ptr, row)
        stop = ctx.load(row_ptr, row + 1)
        acc = ctx.zeros(np.float32)
        for j in ctx.strided_range(start, stop, 1):
            col = ctx.load(col_idx, j)
            contrib = ctx.load(values, j) * ctx.load(x, col)
            acc = ctx.masked(acc, acc + contrib)
        ctx.store(y, row, acc)

    ctx.if_active(row < n, body)
