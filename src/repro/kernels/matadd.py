"""Matrix-addition kernels (paper §V-B, ReadOnlyMem / Fig. 15).

``C = A + B`` over ``n x n`` float32 matrices, with the read-only
operands placed in different memory spaces:

* :data:`matadd_global` — ordinary global loads.  On Kepler these
  bypass the L1 and pay the slow uncached path;
* :data:`matadd_ldg` — ``__ldg`` loads through the read-only data
  cache (no layout change);
* :data:`matadd_tex1d` — operands bound as 1-D (linear) textures;
* :data:`matadd_tex2d` — operands bound as 2-D block-linear textures,
  additionally robust to 2-D-strided access patterns.

A separate :data:`saxpy_const_coeffs` demonstrates the *correct* use of
constant memory (warp-uniform reads of a small coefficient table) and
:data:`matadd_constant_scatter` the anti-pattern (per-lane scattered
reads that serialize on the constant bank).
"""

from __future__ import annotations

import numpy as np

from repro.simt.kernel import kernel

__all__ = [
    "matadd_global",
    "matadd_ldg",
    "matadd_tex1d",
    "matadd_tex2d",
    "saxpy_const_coeffs",
    "matadd_constant_scatter",
]


@kernel
def matadd_global(ctx, a, b, c, n):
    """Row-major matrix add from global memory (one element/thread)."""
    x = ctx.block_idx_x * ctx.block.x + ctx.thread_idx_x
    y = ctx.block_idx_y * ctx.block.y + ctx.thread_idx_y
    i = y * n + x

    def body():
        ctx.store(c, i, ctx.load(a, i) + ctx.load(b, i))

    ctx.if_active((x < n) & (y < n), body)


@kernel
def matadd_ldg(ctx, a, b, c, n):
    """Matrix add with ``__ldg`` read-only loads."""
    x = ctx.block_idx_x * ctx.block.x + ctx.thread_idx_x
    y = ctx.block_idx_y * ctx.block.y + ctx.thread_idx_y
    i = y * n + x

    def body():
        ctx.store(c, i, ctx.load_readonly(a, i) + ctx.load_readonly(b, i))

    ctx.if_active((x < n) & (y < n), body)


@kernel
def matadd_tex1d(ctx, tex_a, tex_b, c, n):
    """Matrix add fetching the operands as 1-D textures."""
    x = ctx.block_idx_x * ctx.block.x + ctx.thread_idx_x
    y = ctx.block_idx_y * ctx.block.y + ctx.thread_idx_y
    i = y * n + x

    def body():
        ctx.store(c, i, ctx.tex1d(tex_a, i) + ctx.tex1d(tex_b, i))

    ctx.if_active((x < n) & (y < n), body)


@kernel
def matadd_tex2d(ctx, tex_a, tex_b, c, n):
    """Matrix add fetching the operands as 2-D block-linear textures."""
    x = ctx.block_idx_x * ctx.block.x + ctx.thread_idx_x
    y = ctx.block_idx_y * ctx.block.y + ctx.thread_idx_y
    i = y * n + x

    def body():
        ctx.store(c, i, ctx.tex2d(tex_a, x, y) + ctx.tex2d(tex_b, x, y))

    ctx.if_active((x < n) & (y < n), body)


@kernel
def saxpy_const_coeffs(ctx, x, y, coeffs, n):
    """``y = c0*x + c1`` with the coefficients in constant memory.

    Every lane reads the same address, so the constant cache broadcasts
    at full speed — the intended constant-memory use case.
    """
    i = ctx.global_thread_id()

    def body():
        c0 = ctx.load_constant(coeffs, 0)
        c1 = ctx.load_constant(coeffs, 1)
        ctx.store(y, i, c0 * ctx.load(x, i) + c1)

    ctx.if_active(i < n, body)


@kernel
def matadd_constant_scatter(ctx, a_const, b, c, n):
    """Anti-pattern: per-lane scattered reads from constant memory.

    Each lane reads a different constant address, so the broadcast bank
    replays the access 32 times per warp.
    """
    i = ctx.global_thread_id()

    def body():
        ctx.store(c, i, ctx.load_constant(a_const, i) + ctx.load(b, i))

    ctx.if_active(i < n, body)
