"""Mandelbrot kernels (paper §III-B, DynParallel / Fig. 5).

Two renderers of the same image:

* *escape time* — the baseline: every pixel runs the dwell iteration to
  escape or ``max_dwell``;
* *Mariani–Silver* — the dynamic-parallelism algorithm: compute the
  dwell only on a rectangle's border; if the border dwell is uniform
  the whole rectangle is filled with that dwell, otherwise the
  rectangle is subdivided into four children, each launched as its own
  (device-side) kernel.  Interior pixels of uniform regions are never
  computed, which is where the 3-4x win at large image sizes comes
  from; at small sizes the per-launch overhead dominates.

The dwell loop is the canonical ``z = z^2 + c`` iteration.  Inside a
warp the lock-step model charges every lane for the slowest lane's trip
count — the divergence cost that makes per-pixel dwell expensive.
"""

from __future__ import annotations

import numpy as np

from repro.simt.kernel import kernel

__all__ = [
    "MAX_DWELL_DEFAULT",
    "mandel_escape",
    "mandel_points",
    "fill_indexed",
    "dwell_host_reference",
]

MAX_DWELL_DEFAULT = 256


def _dwell_loop(ctx, cr, ci, max_dwell):
    """Shared dwell iteration: returns the dwell count per lane."""
    zr = ctx.zeros(np.float64)
    zi = ctx.zeros(np.float64)
    dwell = ctx.zeros(np.int64)
    live = ctx.const(1, np.int64) > 0  # all lanes start live

    def body():
        nonlocal zr, zi, dwell
        zr2 = zr * zr
        zi2 = zi * zi
        new_zi = 2.0 * zr * zi + ci
        new_zr = zr2 - zi2 + cr
        # predicated write-back: escaped lanes keep their final state
        zr = ctx.masked(zr, new_zr)
        zi = ctx.masked(zi, new_zi)
        dwell = ctx.masked(dwell, dwell + 1)
        return ((zr * zr + zi * zi) < 4.0) & (dwell < max_dwell)

    ctx.while_active(live, body, max_iterations=max_dwell + 1)
    return dwell


@kernel(registers=40)
def mandel_escape(ctx, out, w, h, x0, y0, dx, dy, max_dwell):
    """Escape-time renderer: one pixel per thread over the whole image."""
    px = ctx.block_idx_x * ctx.block.x + ctx.thread_idx_x
    py = ctx.block_idx_y * ctx.block.y + ctx.thread_idx_y

    def body():
        cr = px.astype(np.float64) * dx + x0
        ci = py.astype(np.float64) * dy + y0
        dwell = _dwell_loop(ctx, cr, ci, max_dwell)
        ctx.store(out, py * w + px, dwell)

    ctx.if_active((px < w) & (py < h), body)


@kernel(registers=40)
def mandel_points(ctx, xs, ys, dwells, n, x0, y0, dx, dy, max_dwell):
    """Dwell computation for an explicit list of pixel coordinates.

    The Mariani–Silver driver uses this for rectangle borders: the
    coordinate arrays hold the border pixels of every rectangle of the
    current subdivision level, concatenated.
    """
    i = ctx.global_thread_id()

    def body():
        px = ctx.load(xs, i)
        py = ctx.load(ys, i)
        cr = px.astype(np.float64) * dx + x0
        ci = py.astype(np.float64) * dy + y0
        dwell = _dwell_loop(ctx, cr, ci, max_dwell)
        ctx.store(dwells, i, dwell)

    ctx.if_active(i < n, body)


@kernel
def fill_indexed(ctx, out, idxs, vals, n):
    """Scatter fill: ``out[idxs[i]] = vals[i]``.

    Used by Mariani–Silver to fill uniform rectangles with their common
    dwell without computing interior pixels.
    """
    i = ctx.global_thread_id()

    def body():
        ctx.store(out, ctx.load(idxs, i), ctx.load(vals, i))

    ctx.if_active(i < n, body)


def dwell_host_reference(
    w: int,
    h: int,
    x0: float,
    y0: float,
    dx: float,
    dy: float,
    max_dwell: int = MAX_DWELL_DEFAULT,
) -> np.ndarray:
    """Vectorized host reference for verifying both renderers."""
    xs = np.arange(w, dtype=np.float64) * dx + x0
    ys = np.arange(h, dtype=np.float64) * dy + y0
    cr = np.broadcast_to(xs, (h, w)).copy()
    ci = np.broadcast_to(ys[:, None], (h, w)).copy()
    zr = np.zeros_like(cr)
    zi = np.zeros_like(ci)
    dwell = np.zeros((h, w), dtype=np.int64)
    live = np.ones((h, w), dtype=bool)
    for _ in range(max_dwell):
        if not live.any():
            break
        zr2 = zr * zr
        zi2 = zi * zi
        nzi = 2.0 * zr * zi + ci
        nzr = zr2 - zi2 + cr
        zr = np.where(live, nzr, zr)
        zi = np.where(live, nzi, zi)
        dwell[live] += 1
        live &= (zr * zr + zi * zi) < 4.0
        live &= dwell < max_dwell
    return dwell
