"""Matrix-multiplication kernels (paper §IV-A, Shmem).

Square ``C = A @ B`` with 2-D thread blocks; ``TILE x TILE`` tiles:

* :data:`matmul_naive` reads every operand element straight from global
  memory: each thread's dot product re-reads a full row of ``A`` and
  column of ``B``;
* :data:`matmul_tiled` stages ``TILE x TILE`` tiles of both operands in
  shared memory, cutting global traffic by the tile factor — the
  classic CUDA-Samples optimization the paper cites (~20-25% on V100
  because caches already help the naive kernel).

Matrix order ``n`` must be a multiple of :data:`TILE` (the paper's
2048x2048 case is; this keeps the kernels free of edge-case masking,
like the CUDA sample).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import LaunchConfigError
from repro.simt.kernel import kernel

__all__ = ["TILE", "matmul_naive", "matmul_tiled", "matmul_grid_for"]

TILE = 16


def matmul_grid_for(n: int) -> tuple[tuple[int, int], tuple[int, int]]:
    """(grid, block) pair for an ``n x n`` matmul launch."""
    if n % TILE:
        raise LaunchConfigError(f"matrix order {n} not a multiple of TILE={TILE}")
    return (n // TILE, n // TILE), (TILE, TILE)


@kernel(registers=32)
def matmul_naive(ctx, a, b, c, n):
    """Global-memory-only matmul: one output element per thread."""
    row = ctx.block_idx_y * ctx.block.y + ctx.thread_idx_y
    col = ctx.block_idx_x * ctx.block.x + ctx.thread_idx_x
    acc = ctx.zeros(np.float32)
    for k in ctx.range_uniform(n):
        acc = ctx.fma(ctx.load(a, row * n + k), ctx.load(b, k * n + col), acc)
    ctx.store(c, row * n + col, acc)


@kernel(registers=40)
def matmul_tiled(ctx, a, b, c, n):
    """Shared-memory tiled matmul (CUDA Samples ``matrixMul``)."""
    ty = ctx.thread_idx_y
    tx = ctx.thread_idx_x
    row = ctx.block_idx_y * TILE + ty
    col = ctx.block_idx_x * TILE + tx
    a_tile = ctx.shared_array((TILE, TILE), np.float32)
    b_tile = ctx.shared_array((TILE, TILE), np.float32)
    acc = ctx.zeros(np.float32)
    for t in ctx.range_uniform(n // TILE):
        a_tile.store((ty, tx), ctx.load(a, row * n + (t * TILE) + tx))
        b_tile.store((ty, tx), ctx.load(b, (t * TILE + ty) * n + col))
        ctx.syncthreads()
        for k in ctx.range_uniform(TILE):
            acc = ctx.fma(a_tile.load((ty, k)), b_tile.load((k, tx)), acc)
        ctx.syncthreads()
    ctx.store(c, row * n + col, acc)
