"""The sanitizer tools: memcheck, racecheck, synccheck, leakcheck.

The simulator's analog of NVIDIA ``compute-sanitizer``: a
:class:`Sanitizer` instance is attached to a launch (per-launch or via
``CudaLite(sanitize=...)``) and the execution layers call its hooks at
the points where hardware tools would instrument the SASS:

* **memcheck** — every global/constant access is checked against the
  target array's extent *and* its logical red-zone extent
  (:attr:`~repro.mem.buffer.DeviceArray.logical_size`), and loads are
  checked against the allocation's initialized-byte shadow.  Instead of
  the simulator's bare :class:`InvalidAddressError`, out-of-bounds
  lanes produce findings with block/thread coordinates and the
  offending byte address, the access is suppressed for those lanes,
  and the kernel keeps running so later bugs are found in one pass.
* **racecheck** — shared-memory accesses are logged per block between
  ``__syncthreads()`` barriers; read-after-write, write-after-read and
  write-after-write hazards between different threads (of different
  warps, under the default warp-synchronous assumption) are reported.
* **synccheck** — a barrier reached while a warp's active mask is
  split (some threads of the block cannot arrive) is reported instead
  of raised.
* **leakcheck** — allocations still live at context teardown
  (:meth:`CudaLite.close` or session exit) are reported.

Findings accumulate in the sanitizer across launches; read them back
with :meth:`Sanitizer.report`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.common.errors import SanitizerError
from repro.sanitize.findings import SanitizerFinding, SanitizerReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.buffer import DeviceArray
    from repro.simt.context import ThreadContext
    from repro.simt.shared import SharedArray

__all__ = ["Sanitizer", "TOOLS"]

#: Every tool, in report order.  "all" selects the whole set.
TOOLS = ("memcheck", "racecheck", "synccheck", "leakcheck")


def _coords(ctx: "ThreadContext", lane: int) -> tuple[tuple[int, int, int], tuple[int, int, int]]:
    """(blockIdx, threadIdx) of one flat lane index."""
    b = int(ctx._block_of_lane[lane])
    t = int(ctx._lane_in_block[lane])
    g, bd = ctx.grid, ctx.block
    block = (b % g.x, (b // g.x) % g.y, b // (g.x * g.y))
    thread = (t % bd.x, (t // bd.x) % bd.y, t // (bd.x * bd.y))
    return block, thread


class Sanitizer:
    """Collects correctness findings from instrumented execution.

    Parameters
    ----------
    tools:
        ``"all"``, one tool name, or an iterable of tool names.
    max_findings_per_kernel:
        Findings beyond this cap (per kernel name) are counted as
        suppressed rather than stored, so a bug inside a hot loop does
        not produce millions of identical reports.
    warp_synchronous:
        When True (default), racecheck does not report hazards between
        lanes of the same warp — the classic warp-synchronous
        programming assumption lock-step execution guarantees.
    """

    def __init__(
        self,
        tools: str | Iterable[str] = "all",
        *,
        max_findings_per_kernel: int = 25,
        warp_synchronous: bool = True,
    ) -> None:
        if isinstance(tools, str):
            tools = TOOLS if tools == "all" else (tools,)
        self.tools = tuple(tools)
        unknown = set(self.tools) - set(TOOLS)
        if unknown:
            raise SanitizerError(
                f"unknown sanitizer tool(s) {sorted(unknown)}; "
                f"available: {', '.join(TOOLS)}"
            )
        self.max_findings_per_kernel = max_findings_per_kernel
        self.warp_synchronous = warp_synchronous
        self.findings: list[SanitizerFinding] = []
        self.suppressed = 0
        self._seen: set[tuple] = set()
        self._per_kernel: dict[str, int] = {}
        #: optional activity hub; each stored finding is forwarded as a
        #: driver-phase ``sanitizer`` activity record
        self.hub = None

    # ------------------------------------------------------------------
    def enabled(self, tool: str) -> bool:
        return tool in self.tools

    def report(self) -> SanitizerReport:
        return SanitizerReport(
            tools=self.tools, findings=list(self.findings), suppressed=self.suppressed
        )

    def _emit(
        self,
        tool: str,
        rule: str,
        severity: str,
        message: str,
        *,
        ctx: "ThreadContext | None" = None,
        lane: int | None = None,
        address: int | None = None,
        kernel: str | None = None,
    ) -> bool:
        kernel = kernel if kernel is not None else (ctx.stats.name if ctx else "")
        block = thread = None
        if ctx is not None and lane is not None:
            block, thread = _coords(ctx, lane)
        key = (tool, rule, kernel, block, thread, address)
        if key in self._seen:
            return False
        if self._per_kernel.get(kernel, 0) >= self.max_findings_per_kernel:
            self.suppressed += 1
            return False
        self._seen.add(key)
        self._per_kernel[kernel] = self._per_kernel.get(kernel, 0) + 1
        self.findings.append(
            SanitizerFinding(
                tool=tool,
                rule=rule,
                severity=severity,
                kernel=kernel,
                message=message,
                block=block,
                thread=thread,
                address=address,
            )
        )
        hub = self.hub
        if hub is not None and hub.wants("sanitizer"):
            hub.emit(
                "sanitizer",
                f"{tool}:{rule}",
                track="sanitizer",
                severity=severity,
                kernel=kernel,
                message=message,
                address=address,
            )
        return True

    # ==================================================================
    # memcheck
    # ==================================================================
    def check_global_bounds(
        self,
        ctx: "ThreadContext",
        arr: "DeviceArray",
        idx: np.ndarray,
        mask: np.ndarray,
        label: str,
        is_store: bool,
    ) -> np.ndarray:
        """Report out-of-bounds lanes; return the mask with them removed.

        Two classes of violation:

        * *hard* OOB — outside the array view entirely (the simulator
          would raise :class:`InvalidAddressError` without memcheck);
          the access is suppressed for those lanes.
        * *red-zone* OOB — past :attr:`DeviceArray.logical_size` but
          still inside the backing storage.  Hardware silently corrupts
          the neighbouring bytes, and so does the simulator; memcheck
          reports it and lets the write land, exactly like
          ``compute-sanitizer`` patching past an error.
        """
        kind = "write" if is_store else "read"
        what = f" ({label})" if label else ""
        hard = mask & ((idx < 0) | (idx >= arr.size))
        if hard.any():
            for lane in np.flatnonzero(hard)[: self.max_findings_per_kernel]:
                i = int(idx[lane])
                self._emit(
                    "memcheck",
                    f"global-oob-{kind}",
                    "critical",
                    f"invalid global {kind} of {arr.itemsize} bytes{what}: "
                    f"index {i} outside array of {arr.size} elements",
                    ctx=ctx,
                    lane=int(lane),
                    address=arr.base_addr + i * arr.itemsize,
                )
            mask = mask & ~hard
        logical = arr.logical_size
        if logical is not None:
            red = mask & (idx >= logical)
            for lane in np.flatnonzero(red)[: self.max_findings_per_kernel]:
                i = int(idx[lane])
                self._emit(
                    "memcheck",
                    f"global-oob-{kind}",
                    "critical",
                    f"global {kind} of {arr.itemsize} bytes{what} past the "
                    f"logical extent: index {i} >= {logical} (red zone)",
                    ctx=ctx,
                    lane=int(lane),
                    address=arr.base_addr + i * arr.itemsize,
                )
        return mask

    def check_uninit_read(
        self,
        ctx: "ThreadContext",
        arr: "DeviceArray",
        idx_safe: np.ndarray,
        mask: np.ndarray,
        label: str,
    ) -> None:
        """Report lanes reading bytes no copy or store ever wrote."""
        im = arr.alloc.init_mask
        if im is None or getattr(arr.alloc, "_all_init", False):
            return
        if im.all():
            arr.alloc._all_init = True  # monotonic; skip future scans
            return
        lanes = np.flatnonzero(mask)
        if not lanes.size:
            return
        offs = arr.byte_offset + idx_safe[lanes] * arr.itemsize
        ok = im[offs[:, None] + np.arange(arr.itemsize)].all(axis=1)
        what = f" ({label})" if label else ""
        for lane, off in zip(lanes[~ok][: self.max_findings_per_kernel],
                             offs[~ok][: self.max_findings_per_kernel]):
            self._emit(
                "memcheck",
                "uninitialized-read",
                "warning",
                f"global read of {arr.itemsize} uninitialized bytes{what}",
                ctx=ctx,
                lane=int(lane),
                address=arr.alloc.addr + int(off),
            )

    def check_shared_bounds(
        self,
        ctx: "ThreadContext",
        shared: "SharedArray",
        flat: np.ndarray,
        mask: np.ndarray,
        is_store: bool,
    ) -> np.ndarray:
        """Shared-memory analog of :meth:`check_global_bounds`."""
        kind = "write" if is_store else "read"
        bad = mask & ((flat < 0) | (flat >= shared.elems_per_block))
        if bad.any():
            for lane in np.flatnonzero(bad)[: self.max_findings_per_kernel]:
                self._emit(
                    "memcheck",
                    f"shared-oob-{kind}",
                    "critical",
                    f"invalid shared {kind}: index {int(flat[lane])} outside "
                    f"{shared.elems_per_block}-element block array",
                    ctx=ctx,
                    lane=int(lane),
                )
            mask = mask & ~bad
        return mask

    # ==================================================================
    # racecheck
    # ==================================================================
    def _race_state(self, shared: "SharedArray") -> tuple[np.ndarray, np.ndarray]:
        w = getattr(shared, "_race_w", None)
        if w is None:
            n = shared.ctx.n_blocks * shared.elems_per_block
            w = np.full(n, -1, dtype=np.int64)
            r = np.full(n, -1, dtype=np.int64)
            shared._race_w, shared._race_r = w, r
        return shared._race_w, shared._race_r

    def _hazard(self, prev: np.ndarray, lanes: np.ndarray, ws: int) -> np.ndarray:
        other = (prev >= 0) & (prev != lanes)
        if self.warp_synchronous:
            other &= (prev // ws) != (lanes // ws)
        return other

    def _emit_hazard(
        self,
        ctx: "ThreadContext",
        shared: "SharedArray",
        rule: str,
        verb: str,
        lanes: np.ndarray,
        elems: np.ndarray,
        prev: np.ndarray,
    ) -> None:
        for lane, e, p in zip(
            lanes[: self.max_findings_per_kernel],
            elems[: self.max_findings_per_kernel],
            prev[: self.max_findings_per_kernel],
        ):
            _, other_thread = _coords(ctx, int(p))
            self._emit(
                "racecheck",
                rule,
                "critical",
                f"shared-memory hazard: {verb} of element "
                f"{int(e) % shared.elems_per_block} of a "
                f"{shared.shape} {shared.dtype} array without an "
                f"intervening __syncthreads(); conflicts with thread "
                f"({other_thread[0]},{other_thread[1]},{other_thread[2]})",
                ctx=ctx,
                lane=int(lane),
            )

    def shared_access(
        self,
        ctx: "ThreadContext",
        shared: "SharedArray",
        gflat: np.ndarray,
        mask: np.ndarray,
        is_store: bool,
    ) -> None:
        """Log one shared access and report barrier-less hazards.

        ``gflat`` is the block-offset flat element index per lane (two
        lanes of different blocks never alias, so all hazards found are
        intra-block, as on hardware).
        """
        lanes = np.flatnonzero(mask)
        if not lanes.size:
            return
        w, r = self._race_state(shared)
        g = gflat[lanes]
        ws = ctx.warp_size
        if is_store:
            prev_w, prev_r = w[g], r[g]
            ww = self._hazard(prev_w, lanes, ws)
            war = self._hazard(prev_r, lanes, ws)
            self._emit_hazard(
                ctx, shared, "write-after-write", "write", lanes[ww], g[ww], prev_w[ww]
            )
            self._emit_hazard(
                ctx, shared, "write-after-read", "write", lanes[war], g[war], prev_r[war]
            )
            # same-instruction collisions: several lanes storing to one
            # element land in nondeterministic order on hardware
            order = np.argsort(g, kind="stable")
            gs, ls = g[order], lanes[order]
            dup = np.flatnonzero(gs[1:] == gs[:-1])
            if dup.size:
                collide = self._hazard(ls[dup], ls[dup + 1], ws)
                self._emit_hazard(
                    ctx, shared, "write-after-write", "simultaneous write",
                    ls[dup + 1][collide], gs[dup][collide], ls[dup][collide],
                )
            w[g] = lanes
        else:
            prev_w = w[g]
            raw = self._hazard(prev_w, lanes, ws)
            self._emit_hazard(
                ctx, shared, "read-after-write", "read", lanes[raw], g[raw], prev_w[raw]
            )
            r[g] = lanes

    def on_barrier(self, ctx: "ThreadContext") -> None:
        """A ``__syncthreads()`` executed: close the hazard epoch."""
        for shared in ctx._shared_arrays:
            w = getattr(shared, "_race_w", None)
            if w is not None:
                w.fill(-1)
                shared._race_r.fill(-1)

    # ==================================================================
    # synccheck
    # ==================================================================
    def barrier_divergence(self, ctx: "ThreadContext") -> None:
        """Report each warp whose active mask is split at a barrier."""
        ws = ctx.warp_size
        m2d = ctx.mask.reshape(-1, ws)
        b2d = ctx._base_mask.reshape(-1, ws)
        missing = b2d & ~m2d
        for widx in np.flatnonzero(missing.any(axis=1))[: self.max_findings_per_kernel]:
            lane = int(widx) * ws + int(np.argmax(missing[widx]))
            self._emit(
                "synccheck",
                "divergent-barrier",
                "critical",
                "__syncthreads() reached under divergence: this thread "
                f"cannot arrive at the barrier (warp {int(widx)} has a "
                "split active mask)",
                ctx=ctx,
                lane=lane,
            )

    # ==================================================================
    # leakcheck
    # ==================================================================
    def check_leaks(self, runtime) -> None:
        """Report allocations still live at context teardown."""
        live = runtime.allocator.iter_live()
        if not live:
            return
        total = sum(a.nbytes for a in live)
        self._emit(
            "leakcheck",
            "leaked-allocations",
            "warning",
            f"{len(live)} allocation(s) totalling {total} bytes never freed "
            "at context teardown",
            kernel="",
        )
        for alloc in live[:8]:
            self._emit(
                "leakcheck",
                "leaked-allocation",
                "info",
                f"leaked allocation of {alloc.nbytes} bytes",
                kernel="",
                address=alloc.addr,
            )
