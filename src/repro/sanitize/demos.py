"""Deliberately buggy demo kernels for the sanitizer.

Each demo reproduces one class of bug the corresponding tool exists to
catch — and, crucially, *runs cleanly without the sanitizer*, the way
real CUDA bugs silently corrupt rather than crash:

* ``oob-write`` — writes past the logical extent of an array into its
  red-zone padding (memcheck);
* ``uninit-read`` — reads a ``cudaMalloc``'d array nothing ever wrote
  (memcheck);
* ``shared-race`` — block-wide reversal through shared memory with the
  ``__syncthreads()`` missing, so threads read elements other warps
  are writing (racecheck);
* ``divergent-barrier`` — a ``__syncthreads()`` inside a branch only
  half the block takes (synccheck);
* ``leak`` — device allocations never freed before teardown
  (leakcheck);
* ``clean`` — a correct AXPY that no tool should flag.

Run them via ``python -m repro sanitize <demo> --tool all`` or directly
with :func:`run_demo`.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ReproError
from repro.host.runtime import CudaLite
from repro.simt.kernel import kernel

__all__ = ["DEMOS", "run_demo"]

#: red-zone padding elements appended past each demo array's extent
_RED_ZONE = 32


@kernel
def _oob_write_kernel(ctx, out, n):
    """BUG: every thread writes 8 elements past its own index."""
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(out, i + 8, 1.0))


@kernel
def _uninit_read_kernel(ctx, x, y, n):
    """BUG: ``x`` is read, but nothing ever wrote it."""
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(y, i, 2.0 * ctx.load(x, i)))


@kernel
def _shared_race_kernel(ctx, x, y, n):
    """BUG: the barrier between the store and the reversed load is
    missing, so each thread reads an element another warp writes."""
    tile = ctx.shared_array(ctx.block.x, np.float32)
    i = ctx.global_thread_id()
    t = ctx.thread_idx_x
    ctx.if_active(i < n, lambda: tile.store(t, ctx.load(x, i)))
    # ... no ctx.syncthreads() here ...
    rev = (ctx.block.x - 1) - t
    ctx.if_active(i < n, lambda: ctx.store(y, i, tile.load(rev)))


@kernel
def _divergent_barrier_kernel(ctx, y, n):
    """BUG: a barrier inside a branch only half the block takes."""
    i = ctx.global_thread_id()
    t = ctx.thread_idx_x

    def first_half():
        ctx.syncthreads(unsafe=True)
        ctx.store(y, i, 1.0)

    ctx.if_active((t < ctx.block.x // 2) & (i < n), first_half)


@kernel
def _clean_axpy_kernel(ctx, x, y, n, a):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(y, i, a * ctx.load(x, i) + ctx.load(y, i)))


# ----------------------------------------------------------------------
def _padded(rt: CudaLite, n: int) -> "object":
    """An ``n``-element float32 array with red-zone padding behind it."""
    arr = rt.malloc(n + _RED_ZONE, np.float32)
    arr.logical_size = n
    return arr


def demo_oob_write(rt: CudaLite, *, n: int = 1 << 10, block: int = 128) -> None:
    out = _padded(rt, n)
    rt.launch(_oob_write_kernel, -(-n // block), block, out, n)
    rt.synchronize()
    rt.free(out)


def demo_uninit_read(rt: CudaLite, *, n: int = 1 << 10, block: int = 128) -> None:
    x = rt.malloc(n, np.float32)  # never written
    y = rt.malloc(n, np.float32)
    rt.launch(_uninit_read_kernel, -(-n // block), block, x, y, n)
    rt.synchronize()
    rt.free(x)
    rt.free(y)


def demo_shared_race(rt: CudaLite, *, n: int = 1 << 10, block: int = 128) -> None:
    rng = np.random.default_rng(7)
    x = rt.to_device(rng.random(n, dtype=np.float32))
    y = rt.malloc(n, np.float32)
    rt.launch(_shared_race_kernel, -(-n // block), block, x, y, n)
    rt.synchronize()
    rt.free(x)
    rt.free(y)


def demo_divergent_barrier(rt: CudaLite, *, n: int = 1 << 10, block: int = 128) -> None:
    y = rt.malloc(n, np.float32)
    rt.launch(_divergent_barrier_kernel, -(-n // block), block, y, n)
    rt.synchronize()
    rt.free(y)


def demo_leak(rt: CudaLite, *, n: int = 1 << 10, **_: object) -> None:
    for _i in range(3):
        rt.malloc(n, np.float32)  # never freed
    rt.synchronize()


def demo_clean(rt: CudaLite, *, n: int = 1 << 10, block: int = 128) -> None:
    rng = np.random.default_rng(7)
    # timed copies route through memcpy_h2d, so injected transfer faults
    # (and their retries) are exercised when a FaultPlan is attached
    x = rt.to_device(rng.random(n, dtype=np.float32), timed=True)
    y = rt.to_device(rng.random(n, dtype=np.float32), timed=True)
    rt.launch(_clean_axpy_kernel, -(-n // block), block, x, y, n, 2.0)
    rt.synchronize()
    rt.free(x)
    rt.free(y)


#: demo name -> (runner, one-line description)
DEMOS = {
    "oob-write": (demo_oob_write, "global writes land in red-zone padding"),
    "uninit-read": (demo_uninit_read, "reads of never-written device memory"),
    "shared-race": (demo_shared_race, "shared reversal with a missing barrier"),
    "divergent-barrier": (demo_divergent_barrier, "__syncthreads() in a branch"),
    "leak": (demo_leak, "device allocations never freed"),
    "clean": (demo_clean, "a correct AXPY; no findings expected"),
}


def run_demo(name: str, rt: CudaLite, **kwargs) -> None:
    """Run one named demo on an existing runtime."""
    try:
        fn, _ = DEMOS[name]
    except KeyError:
        raise ReproError(
            f"unknown sanitizer demo {name!r}; available: {', '.join(DEMOS)}"
        ) from None
    fn(rt, **kwargs)
