"""Sanitizer findings and the aggregated report.

A :class:`SanitizerFinding` is the correctness-tool analog of the
performance doctor's :class:`repro.host.doctor.Finding`: one detected
problem, carrying the tool that found it, a severity, and — because
correctness bugs are positional — the block/thread coordinates and
device address where it happened, formatted the way
``compute-sanitizer`` prints them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SanitizerError

__all__ = ["SanitizerFinding", "SanitizerReport", "SEVERITIES"]

SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class SanitizerFinding:
    """One problem detected by a sanitizer tool."""

    tool: str          #: "memcheck" | "racecheck" | "synccheck" | "leakcheck"
    rule: str          #: short identifier, e.g. "global-oob-write"
    severity: str      #: one of SEVERITIES
    kernel: str        #: launch the problem occurred in ("" for teardown)
    message: str
    block: tuple[int, int, int] | None = None
    thread: tuple[int, int, int] | None = None
    address: int | None = None

    def __str__(self) -> str:
        where = []
        if self.kernel:
            where.append(f"kernel {self.kernel}")
        if self.block is not None:
            where.append(f"block ({self.block[0]},{self.block[1]},{self.block[2]})")
        if self.thread is not None:
            where.append(
                f"thread ({self.thread[0]},{self.thread[1]},{self.thread[2]})"
            )
        if self.address is not None:
            where.append(f"address {self.address:#x}")
        loc = f" [{', '.join(where)}]" if where else ""
        return f"[{self.severity}] {self.tool}/{self.rule}: {self.message}{loc}"


@dataclass
class SanitizerReport:
    """Every finding of one sanitized run, plus suppression accounting."""

    tools: tuple[str, ...]
    findings: list[SanitizerFinding] = field(default_factory=list)
    suppressed: int = 0       #: findings dropped by the per-kernel cap

    @property
    def errors(self) -> list[SanitizerFinding]:
        return [f for f in self.findings if f.severity == "critical"]

    @property
    def ok(self) -> bool:
        """True when no critical finding fired (warnings/info allowed)."""
        return not self.errors

    def by_tool(self, tool: str) -> list[SanitizerFinding]:
        return [f for f in self.findings if f.tool == tool]

    def raise_if_errors(self) -> None:
        """Raise :class:`SanitizerError` when any critical finding fired."""
        if not self.ok:
            head = self.errors[0]
            raise SanitizerError(
                f"{len(self.errors)} sanitizer error(s); first: {head}"
            )

    def render(self) -> str:
        """A compute-sanitizer style text report."""
        lines = [f"========= sanitizer report (tools: {', '.join(self.tools)})"]
        if not self.findings:
            lines.append("========= no issues detected")
        order = {s: i for i, s in enumerate(SEVERITIES[::-1])}
        for f in sorted(self.findings, key=lambda f: order[f.severity]):
            lines.append(f"  {f}")
        if self.suppressed:
            lines.append(
                f"  ... {self.suppressed} further finding(s) suppressed by cap"
            )
        n_err = len(self.errors)
        lines.append(
            f"========= {len(self.findings)} finding(s), {n_err} error(s)"
        )
        return "\n".join(lines)
