"""Compute-sanitizer analog: memcheck, racecheck, synccheck, leakcheck."""

from repro.sanitize.core import TOOLS, Sanitizer
from repro.sanitize.findings import SanitizerFinding, SanitizerReport
from repro.sanitize.session import SanitizeSession, current_session, sanitize_session

__all__ = [
    "Sanitizer",
    "TOOLS",
    "SanitizerFinding",
    "SanitizerReport",
    "SanitizeSession",
    "current_session",
    "sanitize_session",
]
