"""Ambient sanitize/fault sessions.

The microbenchmark classes construct their own
:class:`~repro.host.runtime.CudaLite` internally, so the CLI (and any
caller that cannot thread parameters through) needs a way to say "every
runtime created in this block runs sanitized / fault-injected".  A
:func:`sanitize_session` provides exactly that through a
:class:`contextvars.ContextVar`: runtimes created inside the ``with``
block pick up the session's sanitizer, fault plan, and watchdog budget
as their defaults, and register themselves so leakcheck can sweep them
at session exit::

    san = Sanitizer("all")
    with sanitize_session(sanitizer=san) as session:
        get_benchmark("MemAlign").run(n=1 << 16)
    print(san.report().render())
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.prof.activity import ActivityHub
    from repro.sanitize.core import Sanitizer

__all__ = ["SanitizeSession", "sanitize_session", "current_session"]


@dataclass
class SanitizeSession:
    """Ambient defaults for runtimes created within the session."""

    sanitizer: "Sanitizer | None" = None
    faults: "FaultPlan | None" = None
    watchdog_cycles: float | None = None
    #: activity hub runtimes attach on construction (profiling sessions)
    hub: "ActivityHub | None" = None
    #: every CudaLite constructed while the session was active
    runtimes: list = field(default_factory=list)


_ACTIVE: ContextVar[SanitizeSession | None] = ContextVar(
    "repro_sanitize_session", default=None
)


def current_session() -> SanitizeSession | None:
    """The innermost active session, or None."""
    return _ACTIVE.get()


@contextmanager
def sanitize_session(
    sanitizer: "Sanitizer | None" = None,
    *,
    faults: "FaultPlan | None" = None,
    watchdog_cycles: float | None = None,
    hub: "ActivityHub | None" = None,
) -> Iterator[SanitizeSession]:
    """Make ``sanitizer``/``faults`` ambient for runtimes created inside.

    On exit, a sanitizer with leakcheck enabled sweeps every runtime
    the session saw for still-live allocations (the
    ``cudaDeviceReset``-time leak report).
    """
    session = SanitizeSession(
        sanitizer=sanitizer,
        faults=faults,
        watchdog_cycles=watchdog_cycles,
        hub=hub,
    )
    token = _ACTIVE.set(session)
    try:
        yield session
    finally:
        _ACTIVE.reset(token)
        if sanitizer is not None and sanitizer.enabled("leakcheck"):
            for rt in session.runtimes:
                sanitizer.check_leaks(rt)
