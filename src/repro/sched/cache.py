"""Content-addressed result cache for benchmark jobs.

A cache entry's key is the SHA-256 of everything the result can depend
on: the *source code* of the benchmark's module and of every module
defining a :class:`~repro.simt.kernel.KernelDef` it references, the
fully-resolved :class:`~repro.arch.spec.SystemSpec`, the run
parameters, the sweep value, and the execution backend.  Editing a
kernel, switching GPUs, or changing a parameter therefore changes the
key; re-running an unchanged configuration is a cache hit that replays
the stored JSON payload — which round-trips floats exactly, so a warm
run is byte-identical to a cold one.

Entries live under ``.repro-cache/`` (git-ignored) as one JSON file per
key, written atomically so concurrent sweep workers never observe a
torn entry.  Each entry additionally carries a SHA-256 checksum of its
payload; a read that finds an unparsable entry or a checksum mismatch
(a torn write that survived, bit rot, a partial copy) *quarantines* the
file — moves it to ``quarantine/`` under the cache root and counts it
in :meth:`ResultCache.stats` — and reports a miss so the scheduler
recomputes instead of crashing or replaying garbage.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import sys
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.arch.spec import SystemSpec
from repro.common.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "gc_cache",
    "source_fingerprint",
]

CACHE_SCHEMA = "repro-sched-cache/1"
DEFAULT_CACHE_DIR = ".repro-cache"

#: bump to invalidate every existing cache entry (layout changes)
_KEY_VERSION = 1

_fingerprint_memo: dict[str, str] = {}


def source_fingerprint(bench_cls: type) -> str:
    """SHA-256 over the sources a benchmark's results derive from.

    Covers the benchmark class's own module plus the module of every
    :class:`KernelDef` reachable from that module's globals (kernels
    are sometimes defined in shared helper modules).
    """
    cached = _fingerprint_memo.get(bench_cls.__module__)
    if cached is not None:
        return cached
    from repro.simt.kernel import KernelDef

    modules = {bench_cls.__module__}
    mod = sys.modules.get(bench_cls.__module__)
    if mod is not None:
        for value in vars(mod).values():
            if isinstance(value, KernelDef):
                modules.add(value.func.__module__)
    digest = hashlib.sha256()
    for name in sorted(modules):
        digest.update(name.encode())
        m = sys.modules.get(name)
        try:
            digest.update(inspect.getsource(m).encode())
        except (TypeError, OSError):
            digest.update(b"<source unavailable>")
    out = digest.hexdigest()
    _fingerprint_memo[bench_cls.__module__] = out
    return out


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)


def _payload_checksum(payload: Any) -> str:
    """SHA-256 over the canonical JSON form of a payload.

    Canonicalization makes the checksum stable across the write
    (in-memory payload) and the verify (payload re-parsed from disk):
    JSON round-trips floats exactly, so both sides hash identically.
    """
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


@dataclass
class ResultCache:
    """On-disk content-addressed store with hit/miss accounting."""

    root: str | Path = DEFAULT_CACHE_DIR
    enabled: bool = True
    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantines: int = 0
    #: optional scheduler chaos plan: tears entries on read so the
    #: quarantine path is exercised deterministically (tests/CI)
    chaos: "FaultPlan | None" = field(default=None, repr=False, compare=False)
    _root_path: Path = field(init=False, repr=False)
    _reads: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._root_path = Path(self.root)

    # ------------------------------------------------------------------
    def key_for(
        self,
        *,
        bench_cls: type,
        system: SystemSpec,
        kind: str,
        params: dict[str, Any],
        values: list[Any] | None,
        backend: str,
    ) -> str:
        """Content hash of one job's full dependency closure."""
        material = {
            "v": _KEY_VERSION,
            "benchmark": bench_cls.name,
            "sources": source_fingerprint(bench_cls),
            "system": asdict(system),
            "kind": kind,
            "params": params,
            "values": values,
            "backend": backend,
        }
        return hashlib.sha256(_canonical(material).encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self._root_path / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """Look a payload up; counts a hit, a miss, or a quarantine.

        A torn or checksum-failing entry is moved to ``quarantine/``
        and reads as a miss, so corruption costs one recompute instead
        of a crash or a silently wrong replay.
        """
        if not self.enabled:
            self.misses += 1
            return None
        path = self._path(key)
        read_ordinal = self._reads
        self._reads += 1
        if (
            self.chaos is not None
            and path.exists()
            and self.chaos.cache_read_corrupts(read_ordinal)
        ):
            # chaos: tear the entry on disk, then take the normal
            # guarded read path — the same code a real torn write hits
            try:
                data = path.read_bytes()
                path.write_bytes(data[: max(1, len(data) // 2)])
            except OSError:
                pass
        try:
            text = path.read_text()
        except OSError:
            # missing or unreadable file is a plain miss
            self.misses += 1
            return None
        try:
            entry = json.loads(text)
            if not isinstance(entry, dict) or "payload" not in entry:
                raise ValueError("entry missing payload")
            stored = entry.get("sha256")
            if stored is not None:
                actual = _payload_checksum(entry["payload"])
                if actual != stored:
                    raise ValueError("payload checksum mismatch")
        except (json.JSONDecodeError, ValueError):
            self._quarantine(path)
            self.misses += 1
            return None
        if entry.get("schema") != CACHE_SCHEMA:
            # a stale layout version, not corruption: plain miss
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def _quarantine(self, path: Path) -> None:
        """Move a corrupted entry aside for post-mortem; never raises."""
        qdir = self._root_path / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:  # pragma: no cover - cross-device or perms
            try:
                path.unlink()
            except OSError:
                pass
        self.quarantines += 1

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store a payload atomically (rename over any concurrent writer).

        Write to a private temp file, fsync it, then ``os.replace`` into
        place: concurrent writers (fleet workers, parallel sweeps on a
        shared cache) each publish a complete entry and the last rename
        wins — a reader can never observe a half-written file, and a
        crash between fsync and rename leaves only a ``*.tmp`` that
        ``repro journal gc`` removes.  Entries are content-addressed so
        racing writers always carry identical payloads; ``get``
        cross-checks the stored checksum regardless.

        An unwritable cache directory surfaces as a :class:`ReproError`
        (CLI exit 2 with the path in the message) instead of a raw
        ``OSError`` traceback — ``--cache-dir`` is user input.
        """
        if not self.enabled:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            entry = {
                "schema": CACHE_SCHEMA,
                "key": key,
                "sha256": _payload_checksum(payload),
                "payload": payload,
            }
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError as exc:
            raise ReproError(
                f"result cache at {self._root_path} is not writable: {exc}; "
                "pick another --cache-dir or pass --no-cache"
            ) from None
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(entry, f)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Counters for the exported ``execution``/scheduler metrics."""
        return {
            "enabled": self.enabled,
            "dir": str(self._root_path),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantines": self.quarantines,
        }


# ----------------------------------------------------------------------
# cache-directory tools (``repro cache gc``)

def _cache_entries(root: Path) -> list[dict[str, Any]]:
    """Every entry file under a cache root, oldest-access first."""
    entries: list[dict[str, Any]] = []
    for path in root.glob("??/*.json"):
        try:
            st = path.stat()
        except OSError:
            continue
        entries.append({
            "path": path,
            "key": path.stem,
            "bytes": st.st_size,
            # mtime doubles as last-use: hits rewrite nothing, but the
            # atomic publish refreshes it on every (re)store, and size
            # eviction wants *some* recency signal without adding reads
            "mtime": st.st_mtime,
        })
    entries.sort(key=lambda e: (e["mtime"], e["key"]))
    return entries


def gc_cache(
    root: str | Path = DEFAULT_CACHE_DIR,
    *,
    older_than_days: float | None = None,
    max_bytes: int | None = None,
    now: float | None = None,
    dry_run: bool = False,
) -> dict[str, Any]:
    """Bound the result cache by age and/or total size.

    Follows the ``journal gc`` conventions (see
    :func:`repro.resilience.journal.gc_runs`): explicit cutoffs, a
    ``dry_run`` that reports without deleting, and a summary dict the
    CLI renders.  Passes:

    * **age** (with ``older_than_days``) — drop entries whose mtime is
      older than the cutoff;
    * **size** (with ``max_bytes``) — then, while the surviving total
      exceeds the budget, evict oldest-first (mtime is refreshed on
      every store, so this is LRU-by-publish);
    * **stale-artifact cleanup** (always) — orphaned ``*.tmp`` files
      from interrupted atomic writes and everything under
      ``quarantine/`` older than the age cutoff.

    Content-addressed entries make eviction always safe: a future miss
    recomputes the identical payload.
    """
    import time as _time

    root = Path(root)
    now = _time.time() if now is None else now
    cutoff = (
        now - older_than_days * 86400.0
        if older_than_days is not None else None
    )
    entries = _cache_entries(root) if root.is_dir() else []
    removed: list[dict[str, Any]] = []
    kept: list[dict[str, Any]] = []
    for entry in entries:
        if cutoff is not None and entry["mtime"] < cutoff:
            removed.append({**entry, "reason": "age"})
        else:
            kept.append(entry)
    if max_bytes is not None:
        total = sum(e["bytes"] for e in kept)
        while kept and total > max_bytes:
            victim = kept.pop(0)          # oldest mtime first
            total -= victim["bytes"]
            removed.append({**victim, "reason": "size"})
    if not dry_run:
        for entry in removed:
            try:
                entry["path"].unlink()
            except OSError:
                pass
        tmps = 0
        if root.is_dir():
            for tmp in root.rglob("*.tmp"):
                try:
                    tmp.unlink()
                    tmps += 1
                except OSError:
                    pass
            qdir = root / "quarantine"
            if qdir.is_dir() and cutoff is not None:
                for path in qdir.iterdir():
                    try:
                        if path.stat().st_mtime < cutoff:
                            path.unlink()
                    except OSError:
                        pass
            # drop now-empty shard directories so the tree stays tidy
            for shard in root.glob("??"):
                try:
                    shard.rmdir()
                except OSError:
                    pass
    else:
        tmps = sum(1 for _ in root.rglob("*.tmp")) if root.is_dir() else 0
    return {
        "removed": [
            {"key": e["key"], "bytes": e["bytes"], "reason": e["reason"]}
            for e in removed
        ],
        "kept": len(kept),
        "kept_bytes": sum(e["bytes"] for e in kept),
        "removed_bytes": sum(e["bytes"] for e in removed),
        "tmp_files_removed": tmps,
        "dry_run": dry_run,
    }
