"""Supervised sweep/suite scheduler with incremental caching.

The unit of work is a :class:`JobSpec` — one benchmark comparison
(``kind="run"``) or one sweep point (``kind="sweep"`` with a single
value).  :func:`run_jobs` resolves each job against the run journal
(``--resume``) and the :class:`~repro.sched.cache.ResultCache` first,
then hands the remaining misses to the supervised worker pool of
:mod:`repro.resilience.supervisor` — per-job wall-clock timeouts,
crash isolation, bounded retries with backoff + jitter, poisoned-job
quarantine, and journal checkpointing after every completed job.
Results come back as the JSON-ready payloads the result types
round-trip through, so a journal replay, a cached replay, and a fresh
computation are byte-for-byte interchangeable.

:func:`parallel_sweep` and :func:`parallel_suite` are the two shapes
the CLI uses: a figure sweep decomposes into one job per x-value
(every benchmark's ``sweep`` runs its comparison independently per
value, so concatenating single-value sweeps in value order reproduces
the serial result exactly), and Table I decomposes into one job per
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.arch.presets import get_system
from repro.common.errors import ReproError
from repro.core.base import BenchResult, SweepResult
from repro.core.registry import ALL_BENCHMARKS, get_benchmark
from repro.core.suite import SuiteReport
from repro.exec.dispatch import current_backend_name, use_backend
from repro.sched.cache import ResultCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceContext
    from repro.resilience.fleet import FleetConfig
    from repro.resilience.supervisor import ResilienceConfig

__all__ = ["JobSpec", "execute_job", "run_jobs", "parallel_sweep", "parallel_suite"]


@dataclass(frozen=True)
class JobSpec:
    """One self-contained, picklable unit of benchmark work."""

    benchmark: str
    kind: str = "run"                    #: "run" or "sweep" (one value)
    params: dict[str, Any] = field(default_factory=dict)
    values: tuple[Any, ...] | None = None
    system: str | None = None            #: preset name; None = paper default
    backend: str = "reference"
    #: span identity of this job (repro.obs); excluded from comparison —
    #: and from job_fingerprint / cache keys, which enumerate the work-
    #: defining fields explicitly — so tracing never perturbs identity
    trace: "TraceContext | None" = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("run", "sweep"):
            raise ReproError(f"unknown job kind {self.kind!r}")
        if self.kind == "sweep" and not self.values:
            raise ReproError("sweep jobs need at least one value")


def _resolve(spec: JobSpec):
    system = get_system(spec.system) if spec.system else None
    return get_benchmark(spec.benchmark, system)


def execute_job(spec: JobSpec) -> dict[str, Any]:
    """Run one job and return its JSON-ready payload."""
    bench = _resolve(spec)
    with use_backend(spec.backend):
        if spec.kind == "run":
            result = bench.run(**spec.params)
            return {"kind": "run", "result": result.as_dict()}
        sweep = bench.sweep(list(spec.values), **spec.params)
        return {"kind": "sweep", "sweep": sweep.as_dict(), "title": sweep.title}


def _cache_key(cache: ResultCache, spec: JobSpec) -> str:
    bench = _resolve(spec)
    return cache.key_for(
        bench_cls=type(bench),
        system=bench.system,
        kind=spec.kind,
        params=spec.params,
        values=list(spec.values) if spec.values is not None else None,
        backend=spec.backend,
    )


def run_jobs(
    specs: Sequence[JobSpec],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    resilience: "ResilienceConfig | None" = None,
    fleet: "FleetConfig | None" = None,
) -> list[dict[str, Any]]:
    """Execute jobs under supervision; order-preserving payload list.

    Resolution order per job: journal (``--resume``) → result cache →
    supervised execution.  The parent process owns all cache and
    journal traffic: lookups happen before dispatch (so warm entries
    never reach the pool) and stores/checkpoints happen as results
    arrive — workers stay side-effect-free.  ``resilience`` carries
    the supervision policy (retries, timeouts, chaos plan, journal,
    activity hub) and collects telemetry; the default policy adds
    crash isolation and bounded retries with no observable change to
    results.

    With ``fleet`` the jobs instead go through the work-stealing fleet
    of :mod:`repro.resilience.fleet`: ``fleet.workers > 0`` spawns
    that many cooperating worker processes and merges their journals
    (``--fleet N``); ``fleet.workers == 0`` makes *this* process one
    worker of an existing fleet run and merges on completion
    (``--join <run-id>``).  Either way the payload list is
    byte-identical to the serial path.
    """
    if fleet is not None:
        from repro.resilience.fleet import join_fleet, run_fleet

        if fleet.workers > 0:
            return run_fleet(specs, fleet, cache=cache)
        return join_fleet(specs, fleet, cache=cache)
    from repro.resilience.supervisor import run_supervised

    return run_supervised(specs, jobs=jobs, cache=cache, config=resilience)


def parallel_sweep(
    benchmark: str,
    values: Sequence[Any],
    *,
    params: dict[str, Any] | None = None,
    system: str | None = None,
    backend: str | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    resilience: "ResilienceConfig | None" = None,
    fleet: "FleetConfig | None" = None,
) -> SweepResult:
    """A figure sweep as one job per value, merged in value order.

    Identical to ``bench.sweep(values, **params)`` — byte-for-byte on
    the exported document — because each sweep point is computed by the
    same per-value comparison the serial loop runs.
    """
    if not values:
        raise ReproError("parallel_sweep needs explicit sweep values")
    resolved = current_backend_name(backend)
    specs = [
        JobSpec(
            benchmark=benchmark,
            kind="sweep",
            params=dict(params or {}),
            values=(v,),
            system=system,
            backend=resolved,
        )
        for v in values
    ]
    payloads = run_jobs(
        specs, jobs=jobs, cache=cache, resilience=resilience, fleet=fleet
    )
    first = payloads[0]["sweep"]
    merged = SweepResult.from_dict(first, title=payloads[0].get("title", ""))
    for payload in payloads[1:]:
        part = payload["sweep"]
        if set(part["series"]) != set(merged.series):
            raise ReproError(
                f"sweep series mismatch across values: {sorted(part['series'])} "
                f"vs {sorted(merged.series)}"
            )
        merged.x_values.extend(part["x_values"])
        for name, points in part["series"].items():
            merged.series[name].extend(points)
    return merged


def parallel_suite(
    overrides: dict[str, dict[str, Any]] | None = None,
    *,
    system: str | None = None,
    backend: str | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    resilience: "ResilienceConfig | None" = None,
    fleet: "FleetConfig | None" = None,
) -> SuiteReport:
    """Table I as one job per benchmark (the ``table1 --jobs`` path)."""
    overrides = overrides or {}
    resolved = current_backend_name(backend)
    specs = [
        JobSpec(
            benchmark=cls.name,
            kind="run",
            params=dict(overrides.get(cls.name, {})),
            system=system,
            backend=resolved,
        )
        for cls in ALL_BENCHMARKS
    ]
    payloads = run_jobs(
        specs, jobs=jobs, cache=cache, resilience=resilience, fleet=fleet
    )
    return SuiteReport(
        results=[BenchResult.from_dict(p["result"]) for p in payloads]
    )
