"""Supervised sweep scheduling and content-addressed result caching."""

from repro.sched.cache import (
    CACHE_SCHEMA,
    DEFAULT_CACHE_DIR,
    ResultCache,
    gc_cache,
    source_fingerprint,
)
from repro.sched.runner import (
    JobSpec,
    execute_job,
    parallel_suite,
    parallel_sweep,
    run_jobs,
)

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "gc_cache",
    "source_fingerprint",
    "JobSpec",
    "execute_job",
    "parallel_suite",
    "parallel_sweep",
    "run_jobs",
]
