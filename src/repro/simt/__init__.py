"""SIMT execution core: lock-step vectorized kernel interpretation."""

from repro.simt.context import ThreadContext
from repro.simt.dim3 import Dim3
from repro.simt.executor import MAX_SIM_THREADS, run_kernel, validate_launch
from repro.simt.kernel import KernelDef, kernel
from repro.simt.lanevec import LaneVec, cost_class_for
from repro.simt.shared import SharedArray
from repro.simt.stats import KernelStats
from repro.simt.texture import DEFAULT_TILE, TextureView

__all__ = [
    "ThreadContext",
    "Dim3",
    "MAX_SIM_THREADS",
    "run_kernel",
    "validate_launch",
    "KernelDef",
    "kernel",
    "LaneVec",
    "cost_class_for",
    "SharedArray",
    "KernelStats",
    "DEFAULT_TILE",
    "TextureView",
]
