"""The lock-step SIMT thread context.

A :class:`ThreadContext` is what a kernel function receives as its first
argument.  It plays the role of CUDA's implicit execution state —
``threadIdx``/``blockIdx``/``blockDim``/``gridDim``, the active mask,
shared memory, ``__syncthreads`` and the warp intrinsics — for *every
thread of the grid at once*: all per-thread values are flat NumPy
arrays (wrapped in :class:`~repro.simt.lanevec.LaneVec`), and control
flow is expressed with explicit mask-manipulating constructs
(:meth:`branch`, :meth:`while_active`, :meth:`strided_range`) that
charge divergent warps for every path they execute, exactly as the
SIMT lock-step hardware model does (paper §III-A).

Lane layout: blocks are laid out consecutively, each padded to a whole
number of warps, so a warp never spans two blocks — matching how the
hardware carves blocks into warps.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.arch.spec import GPUSpec
from repro.common.errors import KernelRuntimeError, WatchdogTimeout
from repro.mem.trace import AccessTrace
from repro.simt.dim3 import Dim3
from repro.simt.lanevec import LaneVec
from repro.simt.memory_ops import MemoryOpsMixin
from repro.simt.stats import KernelStats

__all__ = ["ThreadContext"]


class ThreadContext(MemoryOpsMixin):
    """Vectorized execution state for one kernel launch."""

    def __init__(
        self,
        gpu: GPUSpec,
        grid: Dim3,
        block: Dim3,
        *,
        name: str = "kernel",
        sanitizer=None,
        watchdog_cycles: float | None = None,
        dispatch=None,
    ) -> None:
        self.gpu = gpu
        #: optional :class:`~repro.sanitize.core.Sanitizer` observing
        #: this launch's memory accesses and barriers
        self.sanitizer = sanitizer
        if dispatch is None:
            from repro.exec.dispatch import make_dispatcher

            dispatch = make_dispatcher()
        #: memory-analysis backend (:mod:`repro.exec.dispatch`)
        self.dispatch = dispatch
        #: issue-cycle budget; exceeding it raises :class:`WatchdogTimeout`
        self.watchdog_cycles = watchdog_cycles
        self.grid = grid
        self.block = block
        self.warp_size = gpu.warp_size

        bs = block.size
        self.padded_block_size = -(-bs // self.warp_size) * self.warp_size
        self.n_blocks = grid.size
        self.total_lanes = self.n_blocks * self.padded_block_size

        lane = np.arange(self.total_lanes, dtype=np.int64)
        self._lane_in_block = lane % self.padded_block_size
        self._block_of_lane = lane // self.padded_block_size
        base_mask = self._lane_in_block < bs

        self.stats = KernelStats(
            name=name,
            grid=grid,
            block=block,
            threads=self.n_blocks * bs,
            warps=self.total_lanes // self.warp_size,
            warp_size=self.warp_size,
            trace=AccessTrace.for_grid(self.total_lanes, self.warp_size),
        )

        self._mask_stack: list[np.ndarray] = []
        self._mask = base_mask
        self._base_mask = base_mask
        self._refresh_active()

        self._geom_cache: dict[str, np.ndarray] = {}
        self._shared_arrays: list = []
        self.shared_bytes_per_block = 0
        #: device-side child launches (dynamic parallelism), executed by
        #: the executor after the parent kernel returns
        self.pending_children: list[tuple] = []
        #: pages of managed allocations touched by this launch:
        #: allocation base address -> (read page set, written page set)
        self.managed_touched: dict[int, tuple[set[int], set[int]]] = {}

    # ------------------------------------------------------------------
    # Masks and charging
    # ------------------------------------------------------------------
    @property
    def mask(self) -> np.ndarray:
        """The current activity mask (do not mutate)."""
        return self._mask

    @property
    def active_lanes(self) -> int:
        return self._active_lanes

    @property
    def active_warps(self) -> int:
        return self._active_warps

    def _refresh_active(self) -> None:
        m = self._mask
        self._active_lanes = int(m.sum())
        if self._active_lanes:
            self._active_warps = int(
                m.reshape(-1, self.warp_size).any(axis=1).sum()
            )
        else:
            self._active_warps = 0

    def push_mask(self, mask: np.ndarray) -> None:
        self._mask_stack.append(self._mask)
        self._mask = mask
        self._refresh_active()

    def pop_mask(self) -> None:
        if not self._mask_stack:
            raise KernelRuntimeError("mask stack underflow (unbalanced pop)")
        self._mask = self._mask_stack.pop()
        self._refresh_active()

    def charge(self, op_class: str, count: int = 1) -> None:
        """Charge ``count`` warp-wide instructions of ``op_class``.

        Issue cycles scale with the number of *warps* that have any
        active lane — a half-empty warp occupies the pipeline exactly
        like a full one, which is the root cause of divergence cost.
        """
        st = self.stats
        st.issue_cycles += self.gpu.op_cycles(op_class) * self._active_warps * count
        st.warp_instructions += self._active_warps * count
        st.thread_instructions += self._active_lanes * count
        wd = self.watchdog_cycles
        if wd is not None and st.issue_cycles > wd:
            raise WatchdogTimeout(
                f"kernel {st.name!r} exceeded the watchdog budget of "
                f"{wd:g} issue cycles (at {st.issue_cycles:g}); the display "
                "watchdog (WDDM TDR analog) killed it"
            )

    # ------------------------------------------------------------------
    # Geometry (CUDA special registers; reads are free)
    # ------------------------------------------------------------------
    def _geom(self, key: str) -> np.ndarray:
        cached = self._geom_cache.get(key)
        if cached is not None:
            return cached
        b = self.block
        g = self.grid
        if key == "tx":
            out = self._lane_in_block % b.x
        elif key == "ty":
            out = (self._lane_in_block // b.x) % b.y
        elif key == "tz":
            out = self._lane_in_block // (b.x * b.y)
        elif key == "bx":
            out = self._block_of_lane % g.x
        elif key == "by":
            out = (self._block_of_lane // g.x) % g.y
        elif key == "bz":
            out = self._block_of_lane // (g.x * g.y)
        else:  # pragma: no cover - internal
            raise KeyError(key)
        self._geom_cache[key] = out
        return out

    def _lv(self, data: np.ndarray) -> LaneVec:
        return LaneVec(self, data)

    @property
    def thread_idx_x(self) -> LaneVec:
        return self._lv(self._geom("tx"))

    @property
    def thread_idx_y(self) -> LaneVec:
        return self._lv(self._geom("ty"))

    @property
    def thread_idx_z(self) -> LaneVec:
        return self._lv(self._geom("tz"))

    @property
    def block_idx_x(self) -> LaneVec:
        return self._lv(self._geom("bx"))

    @property
    def block_idx_y(self) -> LaneVec:
        return self._lv(self._geom("by"))

    @property
    def block_idx_z(self) -> LaneVec:
        return self._lv(self._geom("bz"))

    @property
    def block_dim(self) -> Dim3:
        return self.block

    @property
    def grid_dim(self) -> Dim3:
        return self.grid

    def global_thread_id(self) -> LaneVec:
        """``blockIdx.x * blockDim.x + threadIdx.x`` for 1-D launches."""
        return self._lv(self._geom("bx") * self.block.x + self._geom("tx"))

    def total_threads(self) -> int:
        """``gridDim.x * blockDim.x`` (1-D launches)."""
        return self.grid.x * self.block.x

    def lane_id(self) -> LaneVec:
        """Lane index within the warp (``threadIdx.x % warpSize``)."""
        return self._lv(np.arange(self.total_lanes, dtype=np.int64) % self.warp_size)

    def const(self, value: float | int, dtype: np.dtype | type = np.float32) -> LaneVec:
        """Broadcast a scalar into a lane vector (free, like an immediate)."""
        return self._lv(np.full(self.total_lanes, value, dtype=np.dtype(dtype)))

    def zeros(self, dtype: np.dtype | type = np.float32) -> LaneVec:
        return self._lv(np.zeros(self.total_lanes, dtype=np.dtype(dtype)))

    def as_lanevec(self, value) -> LaneVec:
        if isinstance(value, LaneVec):
            return value
        if isinstance(value, np.ndarray):
            if value.shape != (self.total_lanes,):
                raise KernelRuntimeError(
                    f"array of shape {value.shape} is not a lane vector "
                    f"({self.total_lanes} lanes)"
                )
            return self._lv(value)
        return self.const(value, dtype=np.result_type(value))

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def branch(
        self,
        cond: LaneVec,
        then_fn: Callable[[], None],
        else_fn: Callable[[], None] | None = None,
    ) -> None:
        """Execute a data-dependent if/else with SIMT divergence semantics.

        Both sides run under complementary lane masks; a warp whose
        active lanes disagree on ``cond`` is *divergent* and is charged
        for both paths (its lanes are live in both sub-masks).
        """
        c = np.asarray(cond.data, dtype=bool)
        m = self._mask
        mw = m.reshape(-1, self.warp_size)
        cw = c.reshape(-1, self.warp_size)
        has_t = (mw & cw).any(axis=1)
        has_f = (mw & ~cw).any(axis=1)
        self.stats.branches += int((has_t | has_f).sum())
        self.stats.divergent_branches += int((has_t & has_f).sum())
        self.charge("branch")

        self.push_mask(m & c)
        try:
            if self._active_lanes:
                then_fn()
        finally:
            self.pop_mask()
        if else_fn is not None:
            self.push_mask(m & ~c)
            try:
                if self._active_lanes:
                    else_fn()
            finally:
                self.pop_mask()

    def if_active(self, cond: LaneVec, body: Callable[[], None]) -> None:
        """Sugar for :meth:`branch` with no else side."""
        self.branch(cond, body, None)

    def masked(self, old: LaneVec, new: LaneVec) -> LaneVec:
        """Predicated register update: active lanes take ``new``, inactive
        lanes keep ``old``.

        Plain Python rebinding (``v = v + 1``) recomputes *every* lane —
        the lock-step interpreter's arithmetic is maskless, like the
        hardware datapath.  State carried across :meth:`while_active`
        iterations or :meth:`branch` bodies must be committed through
        this method, which models the predicated register write-back.
        Free of charge: predication rides on the producing instruction.
        """
        return self._lv(np.where(self._mask, new.data, old.data))

    def select(self, cond: LaneVec, a: LaneVec, b: LaneVec) -> LaneVec:
        """Predicated select (``cond ? a : b``) — one instruction, no
        divergence; models what the compiler emits for small branches."""
        self.charge("int")
        return self._lv(np.where(np.asarray(cond.data, dtype=bool), a.data, b.data))

    def while_active(
        self,
        cond: LaneVec,
        body: Callable[[], LaneVec],
        *,
        max_iterations: int = 1_000_000,
    ) -> int:
        """Run ``body`` while any lane's condition holds (lock-step loop).

        ``body`` returns the next iteration's continue-condition.  A
        warp keeps issuing until its *slowest* lane finishes — the
        divergence behaviour that makes e.g. Mandelbrot dwell loops
        expensive (paper §III-B).  Returns the iteration count.
        """
        m = np.asarray(cond.data, dtype=bool) & self._mask
        self.push_mask(m)
        iterations = 0
        try:
            while self._active_lanes:
                if iterations >= max_iterations:
                    raise KernelRuntimeError(
                        f"while_active exceeded {max_iterations} iterations"
                    )
                new_cond = body()
                self.charge("branch")
                iterations += 1
                m = self._mask & np.asarray(new_cond.data, dtype=bool)
                self.pop_mask()
                self.push_mask(m)
        finally:
            self.pop_mask()
        return iterations

    def strided_range(self, start, stop, step):
        """Per-lane counted loop: ``for (j = start; j < stop; j += step)``.

        ``start``/``stop``/``step`` may be lane vectors or scalars.
        Yields the loop variable as a lane vector with the activity mask
        narrowed to lanes still inside their bounds, so trailing
        iterations of uneven trip counts are charged only to the warps
        that still have live lanes.  This is exactly the shape of the
        block/cyclic AXPY loops in paper Fig. 8.
        """
        start_d = start.data if isinstance(start, LaneVec) else start
        stop_d = stop.data if isinstance(stop, LaneVec) else stop
        step_d = step.data if isinstance(step, LaneVec) else step
        j = np.broadcast_to(
            np.asarray(start_d, dtype=np.int64), (self.total_lanes,)
        ).copy()
        base = self._mask
        while True:
            live = base & (j < stop_d)
            self.charge("cmp")
            self.charge("branch")
            if not live.any():
                break
            self.push_mask(live)
            try:
                yield self._lv(j.copy())
            finally:
                self.pop_mask()
            # the loop-variable increment is an integer add per iteration
            self.charge("int")
            j = j + step_d

    def range_uniform(self, n: int):
        """Host-uniform counted loop (same trip count for every lane).

        Yields plain Python ints, charging one compare+branch per
        iteration like the hardware's uniform loop overhead.
        """
        for i in range(int(n)):
            self.charge("cmp")
            self.charge("branch")
            yield i

    # ------------------------------------------------------------------
    # Math intrinsics (SFU)
    # ------------------------------------------------------------------
    def _unary_math(self, v: LaneVec, fn, cls: str = "special") -> LaneVec:
        self.charge(cls)
        with np.errstate(all="ignore"):
            return self._lv(fn(v.data))

    def sqrt(self, v: LaneVec) -> LaneVec:
        return self._unary_math(v, np.sqrt)

    def rsqrt(self, v: LaneVec) -> LaneVec:
        return self._unary_math(v, lambda d: 1.0 / np.sqrt(d))

    def exp(self, v: LaneVec) -> LaneVec:
        return self._unary_math(v, np.exp)

    def log(self, v: LaneVec) -> LaneVec:
        return self._unary_math(v, np.log)

    def sin(self, v: LaneVec) -> LaneVec:
        return self._unary_math(v, np.sin)

    def cos(self, v: LaneVec) -> LaneVec:
        return self._unary_math(v, np.cos)

    def fma(self, a: LaneVec, b, c) -> LaneVec:
        """Fused multiply-add: one FP instruction."""
        b_d = b.data if isinstance(b, LaneVec) else b
        c_d = c.data if isinstance(c, LaneVec) else c
        out = a.data * b_d + c_d
        self.charge("fp64" if out.dtype.itemsize == 8 and out.dtype.kind == "f" else "fp32")
        return self._lv(out)

    def min(self, a: LaneVec, b) -> LaneVec:
        b_d = b.data if isinstance(b, LaneVec) else b
        self.charge("int" if a.dtype.kind != "f" else "fp32")
        return self._lv(np.minimum(a.data, b_d))

    def max(self, a: LaneVec, b) -> LaneVec:
        b_d = b.data if isinstance(b, LaneVec) else b
        self.charge("int" if a.dtype.kind != "f" else "fp32")
        return self._lv(np.maximum(a.data, b_d))

    # ------------------------------------------------------------------
    # Warp intrinsics
    # ------------------------------------------------------------------
    def _shfl(self, value: LaneVec, src_lane_2d: np.ndarray) -> LaneVec:
        v2d = value.data.reshape(-1, self.warp_size)
        out = np.take_along_axis(v2d, src_lane_2d, axis=1).reshape(-1)
        self.charge("shfl")
        self.stats.shuffles += self._active_warps
        return self._lv(out)

    def _lane_grid(self) -> np.ndarray:
        n_warps = self.total_lanes // self.warp_size
        return np.broadcast_to(
            np.arange(self.warp_size, dtype=np.int64), (n_warps, self.warp_size)
        )

    def shfl_down(self, value: LaneVec, delta: int, width: int | None = None) -> LaneVec:
        """``__shfl_down_sync``: lane *i* receives lane *i + delta*'s value.

        Lanes whose source falls outside the (sub-)warp keep their own
        value, matching CUDA's behaviour for out-of-range sources.
        """
        w = self.warp_size if width is None else int(width)
        lanes = self._lane_grid()
        src = lanes + delta
        oob = (src % w) < (lanes % w)  # crossed a width-segment boundary
        src = np.where(oob | (src >= self.warp_size), lanes, src)
        return self._shfl(value, src)

    def shfl_up(self, value: LaneVec, delta: int, width: int | None = None) -> LaneVec:
        w = self.warp_size if width is None else int(width)
        lanes = self._lane_grid()
        src = lanes - delta
        oob = (src % w) > (lanes % w)
        src = np.where(oob | (src < 0), lanes, src)
        return self._shfl(value, src)

    def shfl_xor(self, value: LaneVec, lane_mask: int) -> LaneVec:
        """``__shfl_xor_sync``: butterfly exchange pattern."""
        lanes = self._lane_grid()
        src = lanes ^ lane_mask
        src = np.where(src < self.warp_size, src, lanes)
        return self._shfl(value, src)

    def shfl_idx(self, value: LaneVec, src_lane: int) -> LaneVec:
        """``__shfl_sync``: broadcast from a fixed lane."""
        lanes = self._lane_grid()
        src = np.full_like(lanes, int(src_lane) % self.warp_size)
        return self._shfl(value, src)

    # -- warp votes ------------------------------------------------------
    def _warp_vote(self, pred: LaneVec, reducer) -> np.ndarray:
        """Reduce active lanes' predicate per warp, broadcast to lanes."""
        p = np.asarray(pred.data, dtype=bool) & self._mask
        per_warp = reducer(p.reshape(-1, self.warp_size), axis=1)
        self.charge("shfl")
        return per_warp

    def vote_any(self, pred: LaneVec) -> LaneVec:
        """``__any_sync``: true on every lane of a warp with any active
        lane predicating true."""
        per_warp = self._warp_vote(pred, np.any)
        return self._lv(np.repeat(per_warp, self.warp_size))

    def vote_all(self, pred: LaneVec) -> LaneVec:
        """``__all_sync``: true where all *active* lanes predicate true."""
        p = np.asarray(pred.data, dtype=bool)
        m2d = self._mask.reshape(-1, self.warp_size)
        ok = (p.reshape(-1, self.warp_size) | ~m2d).all(axis=1)
        self.charge("shfl")
        return self._lv(np.repeat(ok, self.warp_size))

    def ballot(self, pred: LaneVec) -> LaneVec:
        """``__ballot_sync``: each lane receives the warp's 32-bit mask of
        active lanes whose predicate is true."""
        p = (np.asarray(pred.data, dtype=bool) & self._mask).reshape(
            -1, self.warp_size
        )
        weights = (1 << np.arange(self.warp_size, dtype=np.int64))
        masks = (p * weights).sum(axis=1)
        self.charge("shfl")
        return self._lv(np.repeat(masks, self.warp_size))

    def popc(self, value: LaneVec) -> LaneVec:
        """``__popc``: per-lane population count (for ballot masks)."""
        self.charge("int")
        # SWAR popcount, portable across NumPy versions
        x = value.data.astype(np.uint64)
        x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
        x = (x & np.uint64(0x3333333333333333)) + (
            (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
        )
        x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        x = (x * np.uint64(0x0101010101010101)) >> np.uint64(56)
        return self._lv(x.astype(np.int64))

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------
    def syncthreads(self, *, unsafe: bool = False) -> None:
        """``__syncthreads()``.

        Functionally a no-op under lock-step execution (every statement
        already completes grid-wide before the next); for timing it
        charges a small pipeline-drain cost and counts the barrier.
        Calling it under divergence is undefined behaviour in CUDA, so
        the simulator raises unless ``unsafe=True``; with synccheck
        enabled the divergence is reported as a finding instead and
        execution continues (compute-sanitizer semantics).
        """
        san = self.sanitizer
        if not np.array_equal(self._mask, self._base_mask):
            if san is not None and san.enabled("synccheck"):
                san.barrier_divergence(self)
            elif not unsafe:
                raise KernelRuntimeError(
                    "__syncthreads() reached under divergence (some threads of "
                    "a block would not arrive); pass unsafe=True to mimic "
                    "hardware deadlock-free-by-luck behaviour"
                )
        self.stats.barriers += 1
        if san is not None and san.enabled("racecheck"):
            san.on_barrier(self)
        # ~2 cycles of issue per warp for the bar.sync handshake
        self.charge("branch", count=2)

    def syncwarp(self) -> None:
        """``__syncwarp()``: free under lock-step; counted for fidelity."""
        self.charge("branch")

    # ------------------------------------------------------------------
    # Shared memory and asynchronous copies
    # ------------------------------------------------------------------
    def shared_array(self, shape, dtype=np.float32):
        """Declare a ``__shared__`` array (one instance per block)."""
        from repro.simt.shared import SharedArray

        return SharedArray(self, shape, dtype)

    def memcpy_async(self, dst_shared, dst_index, src_arr, src_index) -> None:
        """``cooperative_groups::memcpy_async`` / Ampere ``cp.async``.

        Copies global -> shared without staging through registers: the
        functional effect equals ``dst.store(dst_index, load(src))``,
        but the charge is only the global transactions — the register
        round-trip and the separate shared store are bypassed
        (paper §IV-D).  Raises on architectures without hardware
        support, where the real API would fall back to a regular copy.
        """
        from repro.common.errors import KernelRuntimeError

        if not self.gpu.supports_memcpy_async:
            raise KernelRuntimeError(
                f"{self.gpu.name} has no hardware memcpy_async (cp.async); "
                "use load+store or pick an Ampere-class GPU"
            )
        idx_safe, mask = self._global_access(
            src_arr, src_index, space="global", is_store=False, label="cp.async"
        )
        if not mask.any():
            return
        values = src_arr.view.reshape(-1)[idx_safe]
        # Functional shared store without the usual charge: temporarily
        # account only bytes, not passes (the DMA path skips the LSU).
        flat = dst_shared._flatten_index(dst_index)
        act = flat[mask]
        if act.size and (act.min() < 0 or act.max() >= dst_shared.elems_per_block):
            raise KernelRuntimeError("memcpy_async shared index out of range")
        gflat = self._block_of_lane * dst_shared.elems_per_block + np.where(mask, flat, 0)
        dst_shared._data[gflat[mask]] = values[mask].astype(dst_shared.dtype, copy=False)
        st = self.stats
        st.async_copies += self._active_warps
        st.async_copy_bytes += int(mask.sum()) * src_arr.itemsize

    def pipeline_commit_and_wait(self) -> None:
        """``pipeline::commit`` + ``wait``; a cheap synchronization."""
        self.charge("branch")

    # ------------------------------------------------------------------
    # Dynamic parallelism
    # ------------------------------------------------------------------
    def launch_child(self, kdef, grid, block, *args) -> None:
        """Device-side kernel launch (``kernel<<<g, b>>>`` from a kernel).

        The simulator executes children after the parent returns — the
        fork-join approximation of CUDA's "children complete before the
        parent's implicit sync".  Each child's statistics merge into
        this launch (so one :class:`KernelStats` describes the whole
        nested tree) and each launch charges the device-side launch
        overhead in the timing model.
        """
        from repro.common.errors import KernelRuntimeError
        from repro.simt.dim3 import Dim3

        if not self.gpu.supports_dynamic_parallelism:
            raise KernelRuntimeError(
                f"{self.gpu.name} does not support dynamic parallelism"
            )
        self.charge("branch")  # the launch instruction itself
        self.pending_children.append((kdef, Dim3.of(grid), Dim3.of(block), args))
