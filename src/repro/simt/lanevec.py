"""Per-lane vectors: the values CUDA threads compute on.

A :class:`LaneVec` holds one value per thread of the launch (a flat
NumPy array over all lanes) and overloads Python's operators so kernel
code reads like ordinary scalar CUDA C::

    i = ctx.global_thread_id()
    y = a * x + y          # charges one FP32 mul and one FP32 add

Every operator both computes the result (vectorized across the grid)
and charges the thread context for one warp-wide instruction of the
appropriate class under the *current activity mask*, which is how the
lock-step interpreter accumulates issue cycles including divergence
effects.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

__all__ = ["LaneVec", "cost_class_for"]


def cost_class_for(dtype: np.dtype, op: str) -> str:
    """Map a result dtype and operator kind to an issue-cost class."""
    if op == "cmp":
        return "cmp"
    if op == "shift":
        return "shift"
    kind = dtype.kind
    if op == "div":
        return "div" if kind == "f" else "int"
    if kind == "f":
        return "fp64" if dtype.itemsize == 8 else "fp32"
    return "int"


class LaneVec:
    """One value per lane, bound to a thread context for cost charging."""

    __slots__ = ("ctx", "data")

    def __init__(self, ctx: Any, data: np.ndarray) -> None:
        self.ctx = ctx
        self.data = np.asarray(data)

    # -- coercion ----------------------------------------------------------
    def _coerce(self, other: Any) -> np.ndarray | int | float | bool:
        if isinstance(other, LaneVec):
            return other.data
        if isinstance(other, (int, float, bool, np.generic)):
            return other
        if isinstance(other, np.ndarray):
            return other
        return NotImplemented  # type: ignore[return-value]

    def _make(self, data: np.ndarray) -> "LaneVec":
        return LaneVec(self.ctx, data)

    def _binop(
        self,
        other: Any,
        fn: Callable[[Any, Any], np.ndarray],
        op_kind: str,
        swap: bool = False,
    ) -> "LaneVec":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        with np.errstate(all="ignore"):
            out = fn(o, self.data) if swap else fn(self.data, o)
        self.ctx.charge(cost_class_for(np.asarray(out).dtype if op_kind != "cmp" else self.data.dtype, op_kind))
        return self._make(out)

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.add, "arith")

    __radd__ = __add__

    def __sub__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.subtract, "arith")

    def __rsub__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.subtract, "arith", swap=True)

    def __mul__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.multiply, "arith")

    __rmul__ = __mul__

    def __truediv__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.true_divide, "div")

    def __rtruediv__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.true_divide, "div", swap=True)

    def __floordiv__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.floor_divide, "div")

    def __rfloordiv__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.floor_divide, "div", swap=True)

    def __mod__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.mod, "div")

    def __rmod__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.mod, "div", swap=True)

    def __neg__(self) -> "LaneVec":
        self.ctx.charge(cost_class_for(self.data.dtype, "arith"))
        return self._make(-self.data)

    def __abs__(self) -> "LaneVec":
        self.ctx.charge(cost_class_for(self.data.dtype, "arith"))
        return self._make(np.abs(self.data))

    # -- bit ops (bool/int lanes) ---------------------------------------------
    def __and__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.bitwise_and, "arith")

    __rand__ = __and__

    def __or__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.bitwise_or, "arith")

    __ror__ = __or__

    def __xor__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.bitwise_xor, "arith")

    __rxor__ = __xor__

    def __invert__(self) -> "LaneVec":
        self.ctx.charge(cost_class_for(self.data.dtype, "arith"))
        return self._make(~self.data)

    def __lshift__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.left_shift, "shift")

    def __rshift__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.right_shift, "shift")

    # -- comparisons ------------------------------------------------------------
    def __lt__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.less, "cmp")

    def __le__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.less_equal, "cmp")

    def __gt__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.greater, "cmp")

    def __ge__(self, o: Any) -> "LaneVec":
        return self._binop(o, np.greater_equal, "cmp")

    def __eq__(self, o: Any) -> "LaneVec":  # type: ignore[override]
        return self._binop(o, np.equal, "cmp")

    def __ne__(self, o: Any) -> "LaneVec":  # type: ignore[override]
        return self._binop(o, np.not_equal, "cmp")

    __hash__ = None  # type: ignore[assignment]

    # -- conversions ---------------------------------------------------------
    def astype(self, dtype: np.dtype | type) -> "LaneVec":
        """Type conversion; charged as a CVT instruction."""
        self.ctx.charge("cvt")
        return self._make(self.data.astype(dtype))

    # -- introspection (free: not device work) ---------------------------------
    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LaneVec({self.data!r})"
