"""CUDA-style 3-component dimensions and thread-hierarchy arithmetic.

CUDA organises threads in a two-level hierarchy — a *grid* of *blocks*
of threads — where each level can be 1-D, 2-D or 3-D (paper Fig. 1).
:class:`Dim3` mirrors CUDA's ``dim3``: missing components default to 1,
and the execution configuration ``<<<grid, block>>>`` becomes
``launch(kernel, grid=Dim3(...), block=Dim3(...))``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import LaunchConfigError

__all__ = ["Dim3"]


@dataclass(frozen=True)
class Dim3:
    """A CUDA ``dim3``: extents along x, y, z (all ≥ 1)."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        for axis in ("x", "y", "z"):
            v = getattr(self, axis)
            if not isinstance(v, int) or v < 1:
                raise LaunchConfigError(
                    f"dim3.{axis} must be a positive integer, got {v!r}"
                )

    @classmethod
    def of(cls, value: "Dim3 | int | tuple[int, ...]") -> "Dim3":
        """Coerce an int, tuple, or Dim3 — like CUDA's implicit dim3."""
        if isinstance(value, Dim3):
            return value
        if isinstance(value, int):
            return cls(value)
        if isinstance(value, tuple):
            if not 1 <= len(value) <= 3:
                raise LaunchConfigError(f"dim3 tuple must have 1-3 elements: {value}")
            return cls(*value)
        raise LaunchConfigError(f"cannot interpret {value!r} as dim3")

    @property
    def size(self) -> int:
        """Total element count, ``x * y * z``."""
        return self.x * self.y * self.z

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.x, self.y, self.z)

    def __str__(self) -> str:
        return f"({self.x}, {self.y}, {self.z})"
