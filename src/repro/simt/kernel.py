"""Kernel definitions: the ``__global__`` functions of the simulator.

A kernel is a Python function whose first parameter is the
:class:`~repro.simt.context.ThreadContext`; the :func:`kernel`
decorator wraps it in a :class:`KernelDef` carrying launch metadata
(display name, an estimated register count for the occupancy
calculator).  KernelDefs are launched through
:func:`repro.simt.executor.run_kernel` or, at system level, through
:class:`repro.host.runtime.CudaLite`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["KernelDef", "kernel"]


@dataclass
class KernelDef:
    """A device kernel plus its static resource estimates.

    ``registers`` feeds the occupancy calculation the way ``nvcc
    --ptxas-options=-v`` output would; kernels that need more live
    state (e.g. the tiled matmul) declare a higher count.
    """

    func: Callable[..., Any]
    name: str
    registers: int = 32
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.registers <= 0:
            raise ValueError("register estimate must be positive")

    def __call__(self, ctx, *args: Any) -> Any:
        """Run the kernel body directly (used by the executor)."""
        return self.func(ctx, *args)

    def __repr__(self) -> str:  # pragma: no cover
        return f"KernelDef({self.name}, regs={self.registers})"


def kernel(
    func: Callable[..., Any] | None = None,
    *,
    name: str | None = None,
    registers: int = 32,
    **meta: Any,
) -> KernelDef | Callable[[Callable[..., Any]], KernelDef]:
    """Decorator turning a context-taking function into a :class:`KernelDef`.

    Usable bare or with options::

        @kernel
        def axpy(ctx, x, y, n, a): ...

        @kernel(registers=40)
        def matmul_tiled(ctx, a, b, c, n): ...
    """

    def wrap(f: Callable[..., Any]) -> KernelDef:
        return KernelDef(func=f, name=name or f.__name__, registers=registers, meta=meta)

    if func is not None:
        return wrap(func)
    return wrap
