"""Texture views: read-only data with spatially-local layouts.

CUDA textures are read-only images sampled through the texture unit.
Two properties matter for performance (paper §V-B):

* fetches go through the texture cache — on Kepler a *dedicated*
  per-SM cache, on Volta+ the unified L1;
* 2-D CUDA arrays are stored *block-linear* (tiled), so 2-D-local
  access patterns touch few cache lines even when they stride the
  logical row.

:class:`TextureView` reproduces both: it wraps a
:class:`~repro.mem.buffer.DeviceArray` whose elements are laid out in
``tile x tile`` blocks, maps logical ``(x, y)`` coordinates to flat
storage indices, and clamps out-of-range coordinates like CUDA's
clamp addressing mode.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import InvalidAddressError
from repro.mem.buffer import DeviceArray

__all__ = ["TextureView", "DEFAULT_TILE"]

#: 8x8 tiles of 4-byte texels = 256-byte blocks, matching the scale of
#: real block-linear GOB tiling.
DEFAULT_TILE = 8


class TextureView:
    """A 1-D or 2-D texture bound over block-linear device storage."""

    def __init__(
        self,
        storage: DeviceArray,
        width: int,
        height: int | None = None,
        *,
        tile: int = DEFAULT_TILE,
    ) -> None:
        self.storage = storage
        self.width = int(width)
        self.height = None if height is None else int(height)
        self.tile = int(tile)
        if self.width <= 0 or (self.height is not None and self.height <= 0):
            raise InvalidAddressError("texture dimensions must be positive")
        if self.is_2d:
            if storage.size < self.padded_width * self.padded_height:
                raise InvalidAddressError(
                    "texture storage smaller than padded block-linear extent"
                )
        elif storage.size < self.width:
            raise InvalidAddressError("texture storage smaller than width")

    @property
    def is_2d(self) -> bool:
        return self.height is not None

    @property
    def tiles_x(self) -> int:
        return -(-self.width // self.tile)

    @property
    def tiles_y(self) -> int:
        assert self.height is not None
        return -(-self.height // self.tile)

    @property
    def padded_width(self) -> int:
        return self.tiles_x * self.tile

    @property
    def padded_height(self) -> int:
        return self.tiles_y * self.tile

    # ------------------------------------------------------------------
    def flat_index_1d(self, x: np.ndarray) -> np.ndarray:
        """Clamped linear index for a 1-D texture fetch."""
        xi = np.clip(np.asarray(x, dtype=np.int64), 0, self.width - 1)
        return xi

    def flat_index_2d(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Clamped block-linear storage index for a 2-D texture fetch."""
        if not self.is_2d:
            raise InvalidAddressError("flat_index_2d on a 1-D texture")
        xi = np.clip(np.asarray(x, dtype=np.int64), 0, self.width - 1)
        yi = np.clip(np.asarray(y, dtype=np.int64), 0, self.height - 1)
        t = self.tile
        tile_idx = (yi // t) * self.tiles_x + (xi // t)
        within = (yi % t) * t + (xi % t)
        return tile_idx * (t * t) + within

    @staticmethod
    def swizzle_2d(host: np.ndarray, tile: int = DEFAULT_TILE) -> np.ndarray:
        """Rearrange a (H, W) host array into block-linear storage order.

        Returns a flat array of length ``padded_h * padded_w`` whose
        element at :meth:`flat_index_2d`'s output equals ``host[y, x]``.
        Padding texels replicate the clamped edge so out-of-range
        fetches still see valid data.
        """
        h, w = host.shape
        tiles_y = -(-h // tile)
        tiles_x = -(-w // tile)
        ph, pw = tiles_y * tile, tiles_x * tile
        padded = np.empty((ph, pw), dtype=host.dtype)
        padded[:h, :w] = host
        if pw > w:
            padded[:h, w:] = host[:, w - 1 : w]
        if ph > h:
            padded[h:, :] = padded[h - 1 : h, :]
        # (ty, y%t, tx, x%t) -> (ty, tx, y%t, x%t) row-major flattening
        blocks = padded.reshape(tiles_y, tile, tiles_x, tile)
        return np.ascontiguousarray(blocks.transpose(0, 2, 1, 3)).reshape(-1)
