"""Per-block shared memory with bank-conflict accounting.

``__shared__`` arrays are private to a block; the simulator backs each
declaration with one NumPy buffer per block and addresses it with
within-block indices.  Because blocks are padded to whole warps in the
lane layout, a warp's lanes always belong to one block and the
bank-conflict analysis can group lanes by warp directly.

Every load/store is charged its serialized pass count from
:func:`repro.mem.banks.analyze_shared_access`: a conflict-free access
costs one cycle per warp, an ``n``-way conflicted one costs ``n``
(paper §IV-F).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import InvalidAddressError, LaunchConfigError
from repro.simt.lanevec import LaneVec

__all__ = ["SharedArray"]


class SharedArray:
    """A ``__shared__`` array instantiated once per block."""

    def __init__(self, ctx, shape: tuple[int, ...] | int, dtype) -> None:
        self.ctx = ctx
        if isinstance(shape, int):
            shape = (shape,)
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.elems_per_block = 1
        for s in self.shape:
            if s <= 0:
                raise LaunchConfigError(f"shared array dimension {s} invalid")
            self.elems_per_block *= s
        self.nbytes_per_block = self.elems_per_block * self.dtype.itemsize
        if (
            ctx.shared_bytes_per_block + self.nbytes_per_block
            > ctx.gpu.shared_mem_per_block
        ):
            raise LaunchConfigError(
                f"shared memory over per-block limit: "
                f"{ctx.shared_bytes_per_block + self.nbytes_per_block} > "
                f"{ctx.gpu.shared_mem_per_block} bytes"
            )
        ctx.shared_bytes_per_block += self.nbytes_per_block
        ctx._shared_arrays.append(self)
        self._data = np.zeros(ctx.n_blocks * self.elems_per_block, dtype=self.dtype)

    # ------------------------------------------------------------------
    def _flatten_index(self, index) -> np.ndarray:
        """Combine an index (lane vector or tuple of them) to flat form."""
        ctx = self.ctx
        if isinstance(index, tuple):
            if len(index) != len(self.shape):
                raise InvalidAddressError(
                    f"{len(index)}-d index into {len(self.shape)}-d shared array"
                )
            flat = np.zeros(ctx.total_lanes, dtype=np.int64)
            for dim, part in enumerate(index):
                d = part.data if isinstance(part, LaneVec) else np.asarray(part)
                flat = flat * self.shape[dim] + d.astype(np.int64)
                if dim:
                    ctx.charge("int")  # address arithmetic per extra dim
            return flat
        d = index.data if isinstance(index, LaneVec) else np.asarray(index)
        if d.shape == ():
            d = np.broadcast_to(d, (ctx.total_lanes,))
        return d.astype(np.int64, copy=False)

    def _account(
        self, flat: np.ndarray, is_store: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        ctx = self.ctx
        san = ctx.sanitizer
        memcheck = san is not None and san.enabled("memcheck")
        mask = ctx.mask
        if memcheck:
            mask = san.check_shared_bounds(ctx, self, flat, mask, is_store)
        elif mask.any():
            act = flat[mask]
            if act.min() < 0 or act.max() >= self.elems_per_block:
                bad = int(act.min() if act.min() < 0 else act.max())
                raise InvalidAddressError(
                    f"shared index {bad} out of range for "
                    f"{self.elems_per_block}-element block array"
                )
        flat_safe = np.where(mask, flat, 0)
        if mask.any():
            summary = ctx.dispatch.analyze_shared(
                flat_safe * self.dtype.itemsize,
                mask,
                warp_size=ctx.warp_size,
                nbanks=ctx.gpu.shared_banks,
                bank_bytes=ctx.gpu.shared_bank_bytes,
            )
            st = ctx.stats
            st.shared_requests += summary.n_warps
            st.shared_passes += summary.passes
            st.bank_conflict_extra += summary.conflict_extra
            st.shared_bytes += summary.n_active_lanes * self.dtype.itemsize
            st.issue_cycles += float(summary.passes)
            st.warp_instructions += summary.n_warps
            st.thread_instructions += summary.n_active_lanes
        global_flat = ctx._block_of_lane * self.elems_per_block + flat_safe
        if san is not None and san.enabled("racecheck"):
            san.shared_access(ctx, self, global_flat, mask, is_store)
        return global_flat, mask

    # ------------------------------------------------------------------
    def load(self, index) -> LaneVec:
        """Shared-memory gather for active lanes."""
        flat = self._flatten_index(index)
        gflat, mask = self._account(flat, is_store=False)
        values = self._data[gflat]
        if not mask.all():
            values = np.where(mask, values, np.zeros((), dtype=self.dtype))
        return self.ctx._lv(values)

    def store(self, index, value) -> None:
        """Shared-memory scatter for active lanes."""
        flat = self._flatten_index(index)
        gflat, mask = self._account(flat, is_store=True)
        if not mask.any():
            return
        val = self.ctx.as_lanevec(value).data.astype(self.dtype, copy=False)
        self._data[gflat[mask]] = val[mask]

    def block_view(self, block_linear: int) -> np.ndarray:
        """Debug/test access to one block's shared buffer (shaped)."""
        start = block_linear * self.elems_per_block
        return self._data[start : start + self.elems_per_block].reshape(self.shape)
