"""Kernel launch validation and execution.

:func:`run_kernel` is the functional heart of the simulator: it
validates the execution configuration against the architecture limits
(as the CUDA runtime would at launch), builds a
:class:`~repro.simt.context.ThreadContext`, runs the kernel body once
in vectorized lock-step over the whole grid, and returns the collected
:class:`~repro.simt.stats.KernelStats`.

Timing is *not* computed here — the stats feed
:func:`repro.timing.model.estimate_kernel_time`, and device-level
scheduling (streams, concurrency, transfers) happens in
:mod:`repro.host`.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.arch.spec import GPUSpec
from repro.common.errors import KernelRuntimeError, LaunchConfigError
from repro.simt.context import ThreadContext
from repro.simt.dim3 import Dim3
from repro.simt.kernel import KernelDef
from repro.simt.stats import KernelStats

__all__ = ["validate_launch", "run_kernel", "MAX_SIM_THREADS"]

#: Guard rail: grids above this many threads would allocate multi-GiB
#: lane vectors; benchmarks use scaled sizes plus analytic extrapolation.
MAX_SIM_THREADS = 1 << 26


def validate_launch(
    gpu: GPUSpec,
    grid: Dim3,
    block: Dim3,
    *,
    shared_mem_bytes: int = 0,
) -> None:
    """Reject configurations the CUDA runtime would refuse."""
    if block.size > gpu.max_threads_per_block:
        raise LaunchConfigError(
            f"block of {block.size} threads exceeds the {gpu.name} limit of "
            f"{gpu.max_threads_per_block}"
        )
    for axis, limit, got in zip(
        "xyz", gpu.max_block_dim, (block.x, block.y, block.z)
    ):
        if got > limit:
            raise LaunchConfigError(
                f"blockDim.{axis}={got} exceeds limit {limit} on {gpu.name}"
            )
    for axis, limit, got in zip("xyz", gpu.max_grid_dim, (grid.x, grid.y, grid.z)):
        if got > limit:
            raise LaunchConfigError(
                f"gridDim.{axis}={got} exceeds limit {limit} on {gpu.name}"
            )
    if shared_mem_bytes > gpu.shared_mem_per_block:
        raise LaunchConfigError(
            f"{shared_mem_bytes} bytes of shared memory exceeds the per-block "
            f"limit of {gpu.shared_mem_per_block} on {gpu.name}"
        )


#: CUDA limits device-side recursion depth (default 24 nesting levels).
MAX_NESTING_DEPTH = 24


def run_kernel(
    kdef: KernelDef,
    grid: Dim3 | int | tuple[int, ...],
    block: Dim3 | int | tuple[int, ...],
    args: Sequence[Any] = (),
    *,
    gpu: GPUSpec,
    name: str | None = None,
    max_sim_threads: int = MAX_SIM_THREADS,
    sanitizer=None,
    watchdog_cycles: float | None = None,
    hub=None,
    dispatch=None,
    _depth: int = 0,
) -> KernelStats:
    """Execute one kernel launch and return its statistics.

    The launch is functional: all side effects land in the device
    arrays passed through ``args``.  Device-side child launches
    (dynamic parallelism) run after the parent in submission order and
    their statistics merge into the returned :class:`KernelStats`.

    ``sanitizer`` attaches a :class:`~repro.sanitize.core.Sanitizer` to
    the launch; ``watchdog_cycles`` bounds the kernel's issue cycles
    (:class:`~repro.common.errors.WatchdogTimeout` past the budget);
    ``hub`` (an :class:`~repro.prof.activity.ActivityHub`) receives a
    driver-phase ``launch`` record per launch, child launches included.
    """
    if _depth > MAX_NESTING_DEPTH:
        raise LaunchConfigError(
            f"dynamic-parallelism nesting exceeded {MAX_NESTING_DEPTH} levels"
        )
    grid = Dim3.of(grid)
    block = Dim3.of(block)
    validate_launch(gpu, grid, block)
    total = grid.size * block.size
    if total > max_sim_threads:
        raise LaunchConfigError(
            f"grid of {total} threads exceeds the simulation guard rail of "
            f"{max_sim_threads}; scale the workload or raise max_sim_threads"
        )
    if total == 0:
        raise LaunchConfigError("empty launch")

    ctx = ThreadContext(
        gpu,
        grid,
        block,
        name=name or kdef.name,
        sanitizer=sanitizer,
        watchdog_cycles=watchdog_cycles,
        dispatch=dispatch,
    )
    # Launch bracketing for stateful dispatchers (the trace-JIT tier
    # records or replays per launch); plain dispatchers have no hooks
    # and pay nothing.
    begin_launch = getattr(ctx.dispatch, "begin_launch", None)
    if begin_launch is not None:
        begin_launch(kdef, grid, block, gpu, tuple(args))
    completed = False
    try:
        try:
            kdef(ctx, *args)
        except RecursionError as exc:  # pragma: no cover - defensive
            raise KernelRuntimeError(
                f"kernel {kdef.name} recursed too deep"
            ) from exc
        if ctx._mask_stack:
            raise KernelRuntimeError(
                f"kernel {kdef.name} left {len(ctx._mask_stack)} masks pushed "
                "(a control-flow helper was aborted mid-iteration)"
            )
        completed = True
    finally:
        if begin_launch is not None:
            ctx.dispatch.end_launch(completed)
    stats = ctx.stats
    stats.shared_mem_per_block = ctx.shared_bytes_per_block
    stats.registers_per_thread = kdef.registers
    stats.managed_touched = ctx.managed_touched
    validate_launch(gpu, grid, block, shared_mem_bytes=stats.shared_mem_per_block)

    if hub is not None and hub.wants("launch"):
        hub.emit(
            "launch",
            stats.name,
            track="driver" if _depth == 0 else "device launches",
            grid=[grid.x, grid.y, grid.z],
            block=[block.x, block.y, block.z],
            threads=total,
            depth=_depth,
        )

    # dynamic parallelism: run children after the parent, fold stats in
    for child_kdef, cgrid, cblock, cargs in ctx.pending_children:
        child = run_kernel(
            child_kdef,
            cgrid,
            cblock,
            cargs,
            gpu=gpu,
            max_sim_threads=max_sim_threads,
            sanitizer=sanitizer,
            watchdog_cycles=watchdog_cycles,
            hub=hub,
            dispatch=ctx.dispatch,
            _depth=_depth + 1,
        )
        stats.merge_child(child)
        for addr, (r, w) in child.managed_touched.items():
            pr, pw = stats.managed_touched.setdefault(addr, (set(), set()))
            pr.update(r)
            pw.update(w)
    return stats
