"""Device memory operations of the thread context.

This mixin implements the global/constant/texture access methods of
:class:`~repro.simt.context.ThreadContext`.  Every access does three
things at once:

1. *functional execution* — vectorized gather/scatter against the
   backing NumPy buffers, honouring the current activity mask;
2. *coalescing analysis* — lane byte-addresses are run through the
   context's :mod:`repro.exec.dispatch` backend (reference analyzer or
   residue-class fast path, identical results) and appended to the
   launch's access trace for later cache resolution;
3. *issue accounting* — the LSU is occupied for one cycle per
   transaction, so a fully uncoalesced access (32 transactions) costs
   a warp 32x the issue slots of a coalesced one, before any DRAM
   bandwidth effect.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import InvalidAddressError, KernelRuntimeError
from repro.mem.buffer import DeviceArray
from repro.mem.coalesce import lanes_to_warps, warp_distinct_counts
from repro.simt.lanevec import LaneVec
from repro.simt.texture import TextureView

__all__ = ["MemoryOpsMixin"]


class MemoryOpsMixin:
    """Global/constant/texture memory methods for the thread context."""

    # Attributes provided by ThreadContext
    gpu: object
    stats: object
    sanitizer: object
    dispatch: object
    total_lanes: int
    warp_size: int

    def _memcheck(self):
        """The active sanitizer if memcheck is enabled, else None."""
        san = self.sanitizer
        return san if san is not None and san.enabled("memcheck") else None

    # ------------------------------------------------------------------
    def _index_data(self, index) -> np.ndarray:
        if isinstance(index, LaneVec):
            idx = index.data
        else:
            idx = np.asarray(index)
        if idx.shape == ():
            idx = np.broadcast_to(idx, (self.total_lanes,))
        if idx.shape != (self.total_lanes,):
            raise KernelRuntimeError(
                f"index of shape {idx.shape} is not a lane vector "
                f"({self.total_lanes} lanes)"
            )
        return idx.astype(np.int64, copy=False)

    def _checked_safe_index(self, arr_size: int, idx: np.ndarray, what: str) -> np.ndarray:
        mask = self._mask
        if mask.any():
            act = idx[mask]
            lo = act.min()
            hi = act.max()
            if lo < 0 or hi >= arr_size:
                bad = int(lo if lo < 0 else hi)
                raise InvalidAddressError(
                    f"{what}: lane index {bad} out of range for "
                    f"{arr_size}-element array"
                )
        return np.where(mask, idx, 0)

    def _global_access(
        self,
        arr: DeviceArray,
        index,
        *,
        space: str,
        is_store: bool,
        label: str,
        flat_override: np.ndarray | None = None,
    ):
        """Analyze + record one access; returns (safe flat index, mask).

        With memcheck enabled, out-of-bounds lanes become findings and
        are dropped from the returned mask instead of raising — the
        kernel keeps running, as under ``compute-sanitizer``.
        """
        idx = flat_override if flat_override is not None else self._index_data(index)
        san = self._memcheck()
        if san is not None:
            mask = san.check_global_bounds(
                self, arr, idx, self._mask, label or space, is_store
            )
            idx_safe = np.where(mask, idx, 0)
        else:
            idx_safe = self._checked_safe_index(arr.size, idx, label or space)
            mask = self._mask
        if not mask.any():
            return idx_safe, mask

        addrs = arr.base_addr + idx_safe * arr.itemsize
        summary = self.dispatch.analyze_global(
            addrs,
            mask,
            arr.itemsize,
            warp_size=self.warp_size,
            transaction_bytes=self.gpu.transaction_bytes,
            sector_bytes=self.gpu.sector_bytes,
        )
        self.stats.trace.record(
            space=space,
            is_store=is_store,
            itemsize=arr.itemsize,
            summary=summary,
            addrs=addrs,
            mask=mask,
            label=label,
        )
        st = self.stats
        st.global_requests += summary.n_warps
        st.transactions += summary.transactions
        st.sectors_requested += summary.sectors
        st.bytes_requested += summary.bytes_requested
        # LSU occupancy: one cycle per transaction (128B/cycle/SM peak).
        st.issue_cycles += summary.transactions
        st.warp_instructions += summary.n_warps
        st.thread_instructions += summary.n_active_lanes

        if arr.alloc.managed:
            pages = np.unique((addrs[mask] - arr.alloc.addr) // self.gpu.um_page_bytes)
            reads, writes = self.managed_touched.setdefault(
                arr.alloc.addr, (set(), set())
            )
            (writes if is_store else reads).update(pages.tolist())
        return idx_safe, mask

    # ------------------------------------------------------------------
    # Global memory
    # ------------------------------------------------------------------
    def load(self, arr: DeviceArray, index, label: str = "") -> LaneVec:
        """Global-memory gather: ``value = arr[index]`` per lane."""
        idx_safe, mask = self._global_access(
            arr, index, space="global", is_store=False, label=label
        )
        san = self._memcheck()
        if san is not None:
            san.check_uninit_read(self, arr, idx_safe, mask, label)
        flat = arr.view.reshape(-1)
        values = flat[idx_safe]
        if not mask.all():
            values = np.where(mask, values, np.zeros((), dtype=arr.dtype))
        return self._lv(values)

    def store(self, arr: DeviceArray, index, value, label: str = "") -> None:
        """Global-memory scatter: ``arr[index] = value`` for active lanes."""
        idx_safe, mask = self._global_access(
            arr, index, space="global", is_store=True, label=label
        )
        if not mask.any():
            return
        val = self.as_lanevec(value).data.astype(arr.dtype, copy=False)
        flat = arr.view.reshape(-1)
        flat[idx_safe[mask]] = val[mask]
        if arr.alloc.init_mask is not None:
            arr.mark_initialized(idx_safe[mask])

    def load_readonly(self, arr: DeviceArray, index, label: str = "") -> LaneVec:
        """``__ldg``-style load through the read-only/texture data path.

        On Kepler this is the only way global data reaches an on-SM
        cache; on Volta+ it is equivalent to a normal cached load.
        """
        idx_safe, mask = self._global_access(
            arr, index, space="texture", is_store=False, label=label or "ldg"
        )
        san = self._memcheck()
        if san is not None:
            san.check_uninit_read(self, arr, idx_safe, mask, label or "ldg")
        flat = arr.view.reshape(-1)
        values = flat[idx_safe]
        if not mask.all():
            values = np.where(mask, values, np.zeros((), dtype=arr.dtype))
        return self._lv(values)

    def atomic_add(self, arr: DeviceArray, index, value, label: str = "") -> LaneVec:
        """``atomicAdd``: returns the pre-update value per active lane.

        Lanes of one warp updating the same address serialize; the
        charge is one cycle per active lane on top of the store-like
        transaction cost, a simple upper-bound contention model.
        """
        idx = self._index_data(index)
        idx_safe, mask = self._global_access(
            arr, index, space="global", is_store=True, label=label or "atomicAdd"
        )
        val = self.as_lanevec(value).data.astype(arr.dtype, copy=False)
        flat = arr.view.reshape(-1)
        if not mask.any():
            return self._lv(np.zeros(self.total_lanes, dtype=arr.dtype))
        # Pre-values with intra-warp serialization order = lane order.
        order = np.flatnonzero(mask)
        pre = np.zeros(self.total_lanes, dtype=arr.dtype)
        # Vectorized prefix within duplicate groups would be overkill for
        # the handful of atomics our kernels issue; do it exactly.
        for lane in order.tolist():
            a = idx_safe[lane]
            pre[lane] = flat[a]
            flat[a] += val[lane]
        st = self.stats
        st.atomics += int(mask.sum())
        st.issue_cycles += float(mask.sum())  # serialization cycles
        if arr.alloc.init_mask is not None:
            arr.mark_initialized(idx_safe[mask])
        _ = idx
        return self._lv(pre)

    # ------------------------------------------------------------------
    # Constant memory
    # ------------------------------------------------------------------
    def load_constant(self, arr: DeviceArray, index, label: str = "") -> LaneVec:
        """Constant-memory load.

        The constant cache broadcasts one address per cycle to a warp:
        a uniform read costs one cycle; lanes reading *different*
        addresses replay once per distinct address (paper §V-B's
        caution against scattering reads over constant memory).
        The constant bank is assumed cache-resident (<= 64 KiB).
        """
        idx = self._index_data(index)
        san = self._memcheck()
        if san is not None:
            mask = san.check_global_bounds(
                self, arr, idx, self._mask, label or "constant", False
            )
            idx_safe = np.where(mask, idx, 0)
            san.check_uninit_read(self, arr, idx_safe, mask, label or "constant")
        else:
            idx_safe = self._checked_safe_index(arr.size, idx, label or "constant")
            mask = self._mask
        if mask.any():
            i2d, m2d = lanes_to_warps(idx_safe, mask, self.warp_size)
            distinct = warp_distinct_counts(i2d, m2d)
            passes = float(distinct.sum())
            n_warps = int((distinct > 0).sum())
            st = self.stats
            st.constant_requests += n_warps
            st.constant_replays += passes - n_warps
            st.issue_cycles += passes
            st.warp_instructions += n_warps
            st.thread_instructions += int(mask.sum())
        flat = arr.view.reshape(-1)
        values = flat[idx_safe]
        if not mask.all():
            values = np.where(mask, values, np.zeros((), dtype=arr.dtype))
        return self._lv(values)

    # ------------------------------------------------------------------
    # Texture fetches
    # ------------------------------------------------------------------
    def tex1d(self, view: TextureView, x, label: str = "") -> LaneVec:
        """1-D texture fetch (clamp addressing)."""
        xi = self._index_data(x)
        flat = view.flat_index_1d(xi)
        return self._texture_fetch(view, flat, label or "tex1D")

    def tex2d(self, view: TextureView, x, y, label: str = "") -> LaneVec:
        """2-D texture fetch through the block-linear layout."""
        xi = self._index_data(x)
        yi = self._index_data(y)
        # address computation: a couple of integer ops in the kernel
        self.charge("int", count=2)
        flat = view.flat_index_2d(xi, yi)
        return self._texture_fetch(view, flat, label or "tex2D")

    def _texture_fetch(self, view: TextureView, flat: np.ndarray, label: str) -> LaneVec:
        arr = view.storage
        idx_safe, mask = self._global_access(
            arr,
            None,
            space="texture",
            is_store=False,
            label=label,
            flat_override=flat,
        )
        data = arr.view.reshape(-1)[idx_safe]
        if not mask.all():
            data = np.where(mask, data, np.zeros((), dtype=arr.dtype))
        return self._lv(data)
