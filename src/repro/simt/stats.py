"""Per-launch execution statistics.

A :class:`KernelStats` is what the lock-step interpreter produces for
one kernel launch: issue-cycle totals, memory-access summaries, shared
memory bank behaviour, divergence counters, and the full access trace.
These are the simulator's analogue of an ``nvprof`` metrics dump, and
they are the sole input (together with the architecture spec and the
occupancy result) of the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.trace import AccessTrace
from repro.simt.dim3 import Dim3

__all__ = ["KernelStats"]


@dataclass
class KernelStats:
    """Microarchitectural event counts for one kernel launch.

    ``issue_cycles`` is the grid-total number of SM pipeline cycles
    occupied by warp instructions (a warp-wide FP32 op on Volta
    occupies the FP32 pipes for ``32/64 = 0.5`` cycles, a 32-transaction
    uncoalesced load occupies the LSU for 32 cycles, an ``n``-way bank
    conflicted shared access costs ``n`` cycles, ...).  Dividing by
    ``sm_count * clock`` turns it into the compute-bound execution time.
    """

    name: str
    grid: Dim3
    block: Dim3
    threads: int
    warps: int
    #: warp width the launch ran with (non-32 widths arise in what-if
    #: studies and the metamorphic warp-size relations)
    warp_size: int = 32

    #: static launch resources, filled in by the executor (occupancy inputs)
    shared_mem_per_block: int = 0
    registers_per_thread: int = 32

    issue_cycles: float = 0.0
    warp_instructions: float = 0.0
    thread_instructions: float = 0.0

    # global/texture/constant memory
    global_requests: float = 0.0      #: warp-level load/store instructions
    transactions: float = 0.0          #: L1-segment transactions
    sectors_requested: float = 0.0     #: 32B sectors before caching
    bytes_requested: float = 0.0       #: useful bytes moved for active lanes
    constant_requests: float = 0.0
    constant_replays: float = 0.0      #: serialization beyond broadcast

    # shared memory
    shared_requests: float = 0.0
    shared_passes: float = 0.0
    bank_conflict_extra: float = 0.0
    shared_bytes: float = 0.0

    # asynchronous global->shared copies (Ampere cp.async)
    async_copies: float = 0.0
    async_copy_bytes: float = 0.0

    # control flow / intrinsics
    branches: int = 0
    divergent_branches: int = 0        #: warp-level divergent branch count
    barriers: int = 0
    shuffles: float = 0.0
    atomics: float = 0.0

    # dynamic parallelism
    device_launches: int = 0

    trace: AccessTrace = field(default_factory=lambda: AccessTrace.for_grid(0))

    #: pages of managed allocations touched (filled by the executor):
    #: allocation base address -> (read page set, written page set)
    managed_touched: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def blocks(self) -> int:
        return self.grid.size

    @property
    def warp_execution_efficiency(self) -> float:
        """Mean fraction of active lanes per issued warp instruction.

        nvprof's ``warp_execution_efficiency``: 100% means no divergence
        waste (paper §III-A reports 85.71% vs 100% for WD vs noWD).
        """
        denom = self.warp_instructions * self.warp_size
        return self.thread_instructions / denom if denom else 1.0

    @property
    def branch_efficiency(self) -> float:
        """Fraction of warp branches that were non-divergent."""
        if not self.branches:
            return 1.0
        return 1.0 - self.divergent_branches / self.branches

    @property
    def gld_efficiency(self) -> float:
        """Useful bytes / sector bytes moved — nvprof's load efficiency."""
        moved = self.sectors_requested * 32.0
        return self.bytes_requested / moved if moved else 1.0

    @property
    def shared_efficiency(self) -> float:
        """Conflict-free passes / actual passes (1.0 = no conflicts)."""
        if not self.shared_passes:
            return 1.0
        return self.shared_requests / self.shared_passes

    def counters(self) -> dict[str, float]:
        """The raw counter block exported into metrics documents.

        Plain floats/ints only — everything here serializes to JSON as
        is.  ``global_read_bytes`` comes from the access trace so the
        Kepler uncached-read-path doctor rule can run off the exported
        document alone.
        """
        rollup = self.trace.space_rollup() if self.trace else {}
        return {
            "blocks": self.blocks,
            "threads": self.threads,
            "warps": self.warps,
            "issue_cycles": self.issue_cycles,
            "warp_instructions": self.warp_instructions,
            "thread_instructions": self.thread_instructions,
            "global_requests": self.global_requests,
            "transactions": self.transactions,
            "sectors_requested": self.sectors_requested,
            "bytes_requested": self.bytes_requested,
            "global_read_bytes": rollup.get("global", {}).get("read_bytes", 0.0),
            "constant_requests": self.constant_requests,
            "constant_replays": self.constant_replays,
            "shared_requests": self.shared_requests,
            "shared_passes": self.shared_passes,
            "bank_conflict_extra": self.bank_conflict_extra,
            "shared_bytes": self.shared_bytes,
            "async_copies": self.async_copies,
            "async_copy_bytes": self.async_copy_bytes,
            "branches": self.branches,
            "divergent_branches": self.divergent_branches,
            "barriers": self.barriers,
            "shuffles": self.shuffles,
            "atomics": self.atomics,
            "device_launches": self.device_launches,
        }

    def merge_child(self, child: "KernelStats") -> None:
        """Fold a device-launched child kernel's counters into this launch.

        Used by the dynamic-parallelism path when a parent kernel's
        nested launches should be accounted as one logical launch.
        """
        for attr in (
            "issue_cycles", "warp_instructions", "thread_instructions",
            "global_requests", "transactions", "sectors_requested",
            "bytes_requested", "constant_requests", "constant_replays",
            "shared_requests", "shared_passes", "bank_conflict_extra",
            "shared_bytes", "shuffles", "atomics",
            "async_copies", "async_copy_bytes",
        ):
            setattr(self, attr, getattr(self, attr) + getattr(child, attr))
        self.branches += child.branches
        self.divergent_branches += child.divergent_branches
        self.barriers += child.barriers
        self.device_launches += child.device_launches + 1
        self.trace.records.extend(child.trace.records)
